package interp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/interp/static"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/opencl/ast"
)

// Source identifies which profiling path produced a Profile.
type Source string

// Profiling paths, cheapest first. Every path yields the exact same
// Profile for a given (kernel, launch, sample) — the "profile" check
// family and TestStaticVsInterpCorpus enforce it corpus-wide.
const (
	// SourceStatic: the static slice executor walked only the control
	// flow and address computations, without running work-groups.
	SourceStatic Source = "static"
	// SourceInterpParallel: the interpreter ran independent work-groups
	// on parallel workers and merged partials in dispatch order.
	SourceInterpParallel Source = "interp-parallel"
	// SourceInterp: the reference sequential interpreter.
	SourceInterp Source = "interp"
)

// profStepLimit is the per-work-item runaway-loop guard shared by the
// interpreter and the plan executor; tests lower it to exercise the
// guard without burning 64M steps (see export_test.go).
var profStepLimit int64 = 64 << 20

// planCache memoizes the static analysis per function: *ir.Func →
// *planEntry. Analysis is pure, and Funcs are shared read-only across
// goroutines once built (see ir.EnsureLoops), so a duplicated analysis
// during a race is only wasted work, never wrong.
var planCache sync.Map

type planEntry struct {
	plan   *static.Plan // nil when the kernel declined analysis
	reason string       // decline reason when plan is nil
	indep  bool         // work-groups provably independent (parallel ok)
}

func planFor(f *ir.Func) *planEntry {
	if e, ok := planCache.Load(f); ok {
		return e.(*planEntry)
	}
	e := &planEntry{indep: groupIndependent(f)}
	plan, err := static.Analyze(f, static.Options{
		KnownCall:   KnownBuiltin,
		KnownAtomic: KnownAtomic,
	})
	if err != nil {
		e.reason = err.Error()
	} else {
		e.plan = plan
	}
	actual, _ := planCache.LoadOrStore(f, e)
	return actual.(*planEntry)
}

// StaticAnalyzable reports whether f's profile can be produced by the
// static fast path, with the decline reason when it cannot.
func StaticAnalyzable(f *ir.Func) (bool, string) {
	e := planFor(f)
	return e.plan != nil, e.reason
}

// statsStatic/statsInterp mirror the obs counters for cheap in-process
// reads (obs counters are per-name children behind a mutex'd registry).
var statsStatic, statsInterp atomic.Uint64

// PathStats reports how many profiles each path has produced since
// process start (static fast path, interpreted fallback).
func PathStats() (staticN, interpN uint64) {
	return statsStatic.Load(), statsInterp.Load()
}

// profileDispatch tries the profiling paths cheapest-first.
func profileDispatch(f *ir.Func, cfg *Config, maxGroups int, spread bool) (*Profile, error) {
	sample := sampleFor(cfg, maxGroups, spread)
	e := planFor(f)
	if e.plan != nil {
		prof, err := runPlan(e.plan, cfg, sample)
		if err == nil {
			statsStatic.Add(1)
			obs.Global().Counter("profile_static_total", "").Inc()
			prof.Source = SourceStatic
			return prof, nil
		}
		// The launch faults. Rerun on the interpreter so the error and
		// the partial profile are byte-identical to the reference path
		// (the slice executor has not touched the buffers, so the rerun
		// starts from the same state).
	}
	statsInterp.Add(1)
	obs.Global().Counter("profile_interp_total", "").Inc()
	prof, src, err := interpProfile(f, cfg, sample, runtime.GOMAXPROCS(0), e.indep)
	if prof != nil {
		prof.Source = src
	}
	return prof, err
}

// InterpProfile profiles f with the interpreter, bypassing the static
// fast path: workers > 1 executes independent work-groups in parallel
// (sequential when the kernel's groups may communicate). Exported so
// tests and benchmarks can pin the path and the worker count; callers
// wanting the fast path use ProfileKernel/ProfileKernelSpread.
func InterpProfile(f *ir.Func, cfg *Config, maxGroups int, spread bool, workers int) (*Profile, error) {
	if maxGroups <= 0 {
		maxGroups = 2
	}
	prof, src, err := interpProfile(f, cfg, sampleFor(cfg, maxGroups, spread), workers, groupIndependent(f))
	if prof != nil {
		prof.Source = src
	}
	return prof, err
}

// StaticProfile profiles f using only the static slice executor. ok
// reports whether the kernel is statically analyzable; when false the
// profile and error are nil and the caller must interpret instead.
func StaticProfile(f *ir.Func, cfg *Config, maxGroups int, spread bool) (*Profile, bool, error) {
	if maxGroups <= 0 {
		maxGroups = 2
	}
	e := planFor(f)
	if e.plan == nil {
		return nil, false, nil
	}
	prof, err := runPlan(e.plan, cfg, sampleFor(cfg, maxGroups, spread))
	if prof != nil {
		prof.Source = SourceStatic
	}
	return prof, true, err
}

func interpProfile(f *ir.Func, cfg *Config, sample groupSample, workers int, indep bool) (*Profile, Source, error) {
	if workers > 1 && indep {
		if prof, ok, err := executeParallel(f, cfg, sample, workers); ok {
			return prof, SourceInterpParallel, err
		}
	}
	prof, err := execute(f, cfg, sample, true)
	return prof, SourceInterp, err
}

// Diff compares two profiles field for field (Source excluded: it
// records provenance, not content) and describes the first difference,
// or returns "" when they are identical. Float comparisons are bitwise:
// the fast paths promise exact equality, not approximation.
func (p *Profile) Diff(q *Profile) string {
	if p == nil || q == nil {
		if p == q {
			return ""
		}
		return fmt.Sprintf("nil mismatch: %v vs %v", p == nil, q == nil)
	}
	if p.WorkItems != q.WorkItems {
		return fmt.Sprintf("WorkItems %d vs %d", p.WorkItems, q.WorkItems)
	}
	if p.Barriers != q.Barriers {
		return fmt.Sprintf("Barriers %v vs %v", p.Barriers, q.Barriers)
	}
	if len(p.BlockCounts) != len(q.BlockCounts) {
		return fmt.Sprintf("BlockCounts size %d vs %d", len(p.BlockCounts), len(q.BlockCounts))
	}
	type bc struct {
		label string
		a, b  float64
		only  bool
	}
	var diffs []bc
	for b, c := range p.BlockCounts {
		c2, ok := q.BlockCounts[b]
		if !ok {
			diffs = append(diffs, bc{label: b.Label(), a: c, only: true})
		} else if c != c2 {
			diffs = append(diffs, bc{label: b.Label(), a: c, b: c2})
		}
	}
	if len(diffs) > 0 {
		sort.Slice(diffs, func(i, j int) bool { return diffs[i].label < diffs[j].label })
		d := diffs[0]
		if d.only {
			return fmt.Sprintf("BlockCounts[%s] %v vs missing", d.label, d.a)
		}
		return fmt.Sprintf("BlockCounts[%s] %v vs %v", d.label, d.a, d.b)
	}
	if len(p.Traces) != len(q.Traces) {
		return fmt.Sprintf("Traces len %d vs %d", len(p.Traces), len(q.Traces))
	}
	for i := range p.Traces {
		ta, tb := p.Traces[i], q.Traces[i]
		if len(ta) != len(tb) {
			return fmt.Sprintf("Traces[%d] len %d vs %d", i, len(ta), len(tb))
		}
		for j := range ta {
			if ta[j] != tb[j] {
				return fmt.Sprintf("Traces[%d][%d] %+v vs %+v", i, j, ta[j], tb[j])
			}
		}
	}
	return ""
}

// ---- static plan executor ----

// Operand source kinds: where a step reads each operand from.
const (
	srcZero uint8 = iota // value never computed by the slice (and never used)
	srcImm               // immediate: IR constant or launch scalar, resolved at compile
	srcReg               // slice register
)

// opSrc is one pre-resolved operand: immediates carry their value,
// register operands their dense slot — the hot loop never touches a map
// or a type switch to read an operand.
type opSrc struct {
	v    Val
	reg  int32
	kind uint8
}

// Step action kinds: the per-step dispatch is numeric, with the memory
// target's storage class decided at compile time.
const (
	aCompute uint8 = iota
	aBarrier
	aLoadParam
	aLoadAlloca
	aStoreParam
	aStoreAlloca
	aAtomicParam
	aAtomicAlloca
	aWorkItem
	aIntArith   // scalar integer arithmetic without a fault path
	aFloatArith // scalar float arithmetic
	aCmp        // scalar comparison
)

// Work-item query kinds. Queries that depend only on the NDRange fold
// to immediates at compile time (wiConst).
const (
	wiGlobalID uint8 = iota
	wiLocalID
	wiGroupID
	wiConst
)

// planStep is one pre-resolved executor step.
type planStep struct {
	in   *ir.Instr
	args []opSrc
	reg  int32 // result register, -1 when the value is not in the slice

	// Memory access pre-resolution (aLoad*/aStore*/aAtomic*).
	prm   *ir.Param // access target for the trace
	buf   *Buffer   // bound buffer (param accesses)
	cells []Val     // tracked alloca contents (nil: bounds-check only)
	count int64     // alloca cell count
	lanes int64     // element lanes of the access
	bytes int       // traced bytes of the access

	// Work-item query pre-resolution (aWorkItem).
	wi    uint8
	dim   int
	wiVal int64 // immediate for wiConst

	castFrom ast.Type // source type of an OpCast

	act uint8
}

// Terminator kinds.
const (
	tBr uint8 = iota
	tCondBr
	tRet
)

// blockPlan is the compiled form of one basic block: its non-terminator
// steps plus direct pointers to the successor plans, so walking the CFG
// costs no map lookups.
type blockPlan struct {
	idx     int
	nInstr  int64 // full instruction count, for the step guard
	steps   []planStep
	term    uint8
	to, els *blockPlan
	cond    opSrc
}

// planExec executes the profile slice of one plan. One instance serves
// a whole profiling run; all mutable state is reset per work-item.
type planExec struct {
	plan  *static.Plan
	cfg   *Config
	nd    NDRange
	entry *blockPlan

	group, local, global [3]int64

	regs     []Val
	tracked  [][]Val // cell slices, for the per-work-item reset
	counts   []int64 // per-block visit counts of the current work-item
	gCounts  []float64
	accesses []Access
	accHint  int // trace length of the previous work-item, for preallocation
	barriers int
	steps    int64
}

func newPlanExec(p *static.Plan, cfg *Config, nd NDRange) *planExec {
	x := &planExec{
		plan:    p,
		cfg:     cfg,
		nd:      nd,
		regs:    make([]Val, p.NumRegs),
		counts:  make([]int64, len(p.Fn.Blocks)),
		gCounts: make([]float64, len(p.Fn.Blocks)),
	}
	cells := make(map[*ir.Alloca][]Val, len(p.TrackedAllocas))
	for a := range p.TrackedAllocas {
		c := make([]Val, a.Count*int64(a.Elem.Lanes()))
		cells[a] = c
		x.tracked = append(x.tracked, c)
	}

	// Two passes: allocate every block plan first so branch targets can
	// link directly.
	plans := make(map[*ir.Block]*blockPlan, len(p.Fn.Blocks))
	for _, b := range p.Fn.Blocks {
		plans[b] = &blockPlan{idx: p.BlockIndex[b], nInstr: int64(len(b.Instrs))}
	}
	for _, b := range p.Fn.Blocks {
		bp := plans[b]
		for _, in := range p.Steps[b] {
			if in.Op.IsTerminator() {
				switch in.Op {
				case ir.OpBr:
					bp.term, bp.to = tBr, plans[in.To]
				case ir.OpCondBr:
					bp.term, bp.to, bp.els = tCondBr, plans[in.To], plans[in.Else]
					bp.cond = x.compileSrc(in.Args[0])
				case ir.OpRet:
					bp.term = tRet
				}
				continue
			}
			bp.steps = append(bp.steps, x.compileStep(in, cells))
		}
	}
	x.entry = plans[p.Fn.Entry()]
	return x
}

// compileSrc resolves one operand to its source.
func (x *planExec) compileSrc(v ir.Value) opSrc {
	switch t := v.(type) {
	case *ir.Const:
		if t.T.Base.IsFloat() {
			return opSrc{kind: srcImm, v: FloatVal(t.F)}
		}
		return opSrc{kind: srcImm, v: IntVal(t.I)}
	case *ir.Param:
		return opSrc{kind: srcImm, v: x.cfg.Scalars[t.PName]} // presence validated up front
	case *ir.Instr:
		if ri, ok := x.plan.RegIndex[t]; ok {
			return opSrc{kind: srcReg, reg: int32(ri)}
		}
	}
	return opSrc{kind: srcZero}
}

// compileStep pre-resolves one non-terminator step.
func (x *planExec) compileStep(in *ir.Instr, cells map[*ir.Alloca][]Val) planStep {
	st := planStep{in: in, reg: -1, act: aCompute}
	if ri, ok := x.plan.RegIndex[in]; ok {
		st.reg = int32(ri)
	}
	st.args = make([]opSrc, len(in.Args))
	for i, a := range in.Args {
		st.args[i] = x.compileSrc(a)
	}
	switch in.Op {
	case ir.OpBarrier:
		st.act = aBarrier
	case ir.OpAdd, ir.OpSub, ir.OpMul,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr:
		// Scalar integer ops have no fault path (Div/Rem stay on the
		// generic path for their division-by-zero errors) and dominate
		// address arithmetic — worth an inline fast path.
		if !in.T.IsVector() {
			st.act = aIntArith
		}
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		if !in.T.IsVector() {
			st.act = aFloatArith
		}
	case ir.OpICmp, ir.OpFCmp:
		if !in.T.IsVector() {
			st.act = aCmp
		}
	case ir.OpCast:
		st.castFrom = in.Args[0].Type()
	case ir.OpLoad:
		st.lanes = int64(in.T.Lanes())
		st.bytes = in.T.ElemSize()
		switch s := in.Mem.(type) {
		case *ir.Param:
			st.act, st.prm, st.buf = aLoadParam, s, x.cfg.Buffers[s.PName]
		case *ir.Alloca:
			st.act, st.count = aLoadAlloca, s.Count
			st.cells = cells[s]
		}
	case ir.OpStore:
		switch s := in.Mem.(type) {
		case *ir.Param:
			t := s.Elem()
			st.act, st.prm, st.buf = aStoreParam, s, x.cfg.Buffers[s.PName]
			st.lanes, st.bytes = int64(t.Lanes()), t.ElemSize()
		case *ir.Alloca:
			st.act, st.count = aStoreAlloca, s.Count
			st.lanes = int64(s.Elem.Lanes())
			st.cells = cells[s]
		}
	case ir.OpAtomic:
		switch s := in.Mem.(type) {
		case *ir.Param:
			t := s.Elem()
			st.act, st.prm, st.buf = aAtomicParam, s, x.cfg.Buffers[s.PName]
			st.lanes, st.bytes = int64(t.Lanes()), t.ElemSize()
		case *ir.Alloca:
			st.act, st.count = aAtomicAlloca, s.Count
			st.lanes = int64(s.Elem.Lanes())
		}
	case ir.OpWorkItem:
		st.act = aWorkItem
		st.dim = in.Dim
		if st.dim < 0 || st.dim > 2 {
			st.dim = 0
		}
		switch in.Fn {
		case "get_global_id":
			st.wi = wiGlobalID
		case "get_local_id":
			st.wi = wiLocalID
		case "get_group_id":
			st.wi = wiGroupID
		default:
			// NDRange-only queries are launch constants.
			n, _ := workItemVal(in.Fn, in.Dim, x.nd, [3]int64{}, [3]int64{}, [3]int64{})
			st.wi, st.wiVal = wiConst, n
		}
	}
	return st
}

// runPlan profiles the sampled work-groups of a launch by executing
// only the plan's slice, reproducing the interpreter's group and
// work-item iteration order, trace emission, bounds checks and profile
// accumulation exactly. Buffers are never mutated.
func runPlan(p *static.Plan, cfg *Config, sample groupSample) (*Profile, error) {
	nd := cfg.Range.Normalize()
	groups := nd.NumGroups()
	if nd.WorkGroupSize() <= 0 {
		return nil, fmt.Errorf("interp: empty work-group")
	}
	if err := validateArgs(p.Fn, cfg); err != nil {
		return nil, err
	}

	prof := &Profile{BlockCounts: make(map[*ir.Block]float64)}
	x := newPlanExec(p, cfg, nd)

	gid := int64(0)
loop:
	for gz := int64(0); gz < groups[2]; gz++ {
		for gy := int64(0); gy < groups[1]; gy++ {
			for gx := int64(0); gx < groups[0]; gx++ {
				if sample.last >= 0 && gid > sample.last {
					break loop
				}
				if sample.sel(gid) {
					if err := x.runGroup([3]int64{gx, gy, gz}, prof); err != nil {
						return prof, err
					}
				}
				gid++
			}
		}
	}
	finalizeProfile(prof)
	return prof, nil
}

// runGroup executes every work-item of one group. Like the
// interpreter, a group contributes to the profile only when every one
// of its work-items completes.
func (x *planExec) runGroup(group [3]int64, prof *Profile) error {
	x.group = group
	nd := x.nd
	blocks := x.plan.Fn.Blocks

	gWIs := 0
	gBarriers := 0.0
	for i := range x.gCounts {
		x.gCounts[i] = 0
	}
	var gTraces [][]Access

	for lz := int64(0); lz < nd.Local[2]; lz++ {
		for ly := int64(0); ly < nd.Local[1]; ly++ {
			for lx := int64(0); lx < nd.Local[0]; lx++ {
				x.local = [3]int64{lx, ly, lz}
				x.global = [3]int64{
					group[0]*nd.Local[0] + lx,
					group[1]*nd.Local[1] + ly,
					group[2]*nd.Local[2] + lz,
				}
				if err := x.runWI(); err != nil {
					return err
				}
				gWIs++
				for bi, c := range x.counts {
					if c != 0 {
						x.gCounts[bi] += float64(c)
					}
				}
				gBarriers += float64(x.barriers)
				x.accHint = len(x.accesses)
				gTraces = append(gTraces, x.accesses)
				x.accesses = nil // ownership moved to the trace
			}
		}
	}

	prof.WorkItems += gWIs
	for bi, c := range x.gCounts {
		if c != 0 {
			prof.BlockCounts[blocks[bi]] += c
		}
	}
	prof.Barriers += gBarriers
	prof.Traces = append(prof.Traces, gTraces...)
	return nil
}

// runWI executes the slice for one work-item.
func (x *planExec) runWI() error {
	for i := range x.regs {
		x.regs[i] = Val{}
	}
	for _, cells := range x.tracked {
		for i := range cells {
			cells[i] = Val{}
		}
	}
	for i := range x.counts {
		x.counts[i] = 0
	}
	x.barriers = 0
	x.steps = 0
	// Preallocate the trace at the previous work-item's length — the
	// work-items of one kernel trace near-identical access counts, so
	// this removes the append-growth reallocations. A work-item with no
	// accesses still Diff-equals the interpreter's nil trace: profile
	// comparison is by length and elements.
	if x.accHint > 0 {
		x.accesses = make([]Access, 0, x.accHint)
	} else {
		x.accesses = nil
	}

	bp := x.entry
	for {
		x.counts[bp.idx]++
		x.steps += bp.nInstr
		if x.steps > profStepLimit {
			return fmt.Errorf("interp: work-item exceeded %d steps (infinite loop?)", profStepLimit)
		}
		for i := range bp.steps {
			if err := x.step(&bp.steps[i]); err != nil {
				return err
			}
		}
		switch bp.term {
		case tBr:
			bp = bp.to
		case tCondBr:
			if truthy(x.src(bp.cond)) {
				bp = bp.to
			} else {
				bp = bp.els
			}
		default: // tRet
			return nil
		}
	}
}

// src reads one pre-resolved operand.
func (x *planExec) src(s opSrc) Val {
	if s.kind == srcReg {
		return x.regs[s.reg]
	}
	return s.v
}

// step executes one non-terminator slice step.
func (x *planExec) step(st *planStep) error {
	switch st.act {
	case aBarrier:
		// No synchronization: nothing in the slice crosses work-items.
		x.barriers++
		return nil
	case aWorkItem:
		if st.reg >= 0 {
			var n int64
			switch st.wi {
			case wiGlobalID:
				n = x.global[st.dim]
			case wiLocalID:
				n = x.local[st.dim]
			case wiGroupID:
				n = x.group[st.dim]
			default:
				n = st.wiVal
			}
			x.regs[st.reg] = IntVal(n)
		}
		return nil
	case aIntArith:
		// Mirrors scalarArithVal's integer cases exactly (64-bit, no
		// width truncation) minus the call and error plumbing.
		a, b := x.src(st.args[0]), x.src(st.args[1])
		var n int64
		switch st.in.Op {
		case ir.OpAdd:
			n = a.I + b.I
		case ir.OpSub:
			n = a.I - b.I
		case ir.OpMul:
			n = a.I * b.I
		case ir.OpAnd:
			n = a.I & b.I
		case ir.OpOr:
			n = a.I | b.I
		case ir.OpXor:
			n = a.I ^ b.I
		case ir.OpShl:
			n = a.I << uint(b.I&63)
		case ir.OpLShr:
			n = int64(uint64(a.I) >> uint(b.I&63))
		default: // ir.OpAShr
			n = a.I >> uint(b.I&63)
		}
		if st.reg >= 0 {
			x.regs[st.reg] = IntVal(n)
		}
		return nil
	case aFloatArith:
		a, b := x.src(st.args[0]), x.src(st.args[1])
		var f float64
		switch st.in.Op {
		case ir.OpFAdd:
			f = a.F + b.F
		case ir.OpFSub:
			f = a.F - b.F
		case ir.OpFMul:
			f = a.F * b.F
		default: // ir.OpFDiv
			f = a.F / b.F
		}
		if st.reg >= 0 {
			x.regs[st.reg] = FloatVal(f)
		}
		return nil
	case aCmp:
		// Mirrors compareVal's scalar path exactly.
		if st.reg >= 0 {
			a, b := x.src(st.args[0]), x.src(st.args[1])
			var r bool
			if st.in.Op == ir.OpFCmp {
				switch st.in.Pr {
				case ir.PredEQ:
					r = a.F == b.F
				case ir.PredNE:
					r = a.F != b.F
				case ir.PredLT:
					r = a.F < b.F
				case ir.PredLE:
					r = a.F <= b.F
				case ir.PredGT:
					r = a.F > b.F
				case ir.PredGE:
					r = a.F >= b.F
				}
			} else {
				switch st.in.Pr {
				case ir.PredEQ:
					r = a.I == b.I
				case ir.PredNE:
					r = a.I != b.I
				case ir.PredLT:
					r = a.I < b.I
				case ir.PredLE:
					r = a.I <= b.I
				case ir.PredGT:
					r = a.I > b.I
				case ir.PredGE:
					r = a.I >= b.I
				}
			}
			if r {
				x.regs[st.reg] = IntVal(1)
			} else {
				x.regs[st.reg] = IntVal(0)
			}
		}
		return nil
	case aLoadParam:
		idx := x.src(st.args[0]).I
		base := idx * st.lanes
		if base < 0 || base+st.lanes > int64(st.buf.Len()) {
			return fmt.Errorf("interp: load out of bounds: %s[%d] (len %d)", st.prm.PName, idx, st.buf.Len()/int(st.lanes))
		}
		x.accesses = append(x.accesses, Access{
			Param: st.prm, Index: idx, Bytes: st.bytes, Write: false,
		})
		if st.reg >= 0 {
			x.regs[st.reg] = readBufPlain(st.buf, base, st.lanes)
		}
		return nil
	case aLoadAlloca:
		idx := x.src(st.args[0]).I
		base := idx * st.lanes
		want := st.count * st.lanes
		if base < 0 || base+st.lanes > want {
			return fmt.Errorf("interp: load out of bounds: %s[%d] (len %d)", st.in.Mem.(*ir.Alloca).AName, idx, st.count)
		}
		if st.reg >= 0 {
			if st.lanes == 1 {
				x.regs[st.reg] = st.cells[base]
			} else {
				out := Val{Vec: make([]Val, st.lanes)}
				copy(out.Vec, st.cells[base:base+st.lanes])
				x.regs[st.reg] = out
			}
		}
		return nil
	case aStoreParam:
		// Global buffers are left untouched — no statically analyzable
		// kernel reads back what it wrote (that is the analyzability
		// criterion) — so the store only traces and bounds-checks.
		idx := x.src(st.args[0]).I
		base := idx * st.lanes
		if base < 0 || base+st.lanes > int64(st.buf.Len()) {
			return fmt.Errorf("interp: store out of bounds: %s[%d] (len %d)", st.prm.PName, idx, st.buf.Len()/int(st.lanes))
		}
		x.accesses = append(x.accesses, Access{
			Param: st.prm, Index: idx, Bytes: st.bytes, Write: true,
		})
		return nil
	case aStoreAlloca:
		idx := x.src(st.args[0]).I
		base := idx * st.lanes
		want := st.count * st.lanes
		if base < 0 || base+st.lanes > want {
			return fmt.Errorf("interp: store out of bounds: %s[%d] (len %d)", st.in.Mem.(*ir.Alloca).AName, idx, st.count)
		}
		if st.cells != nil { // tracked: contents modelled exactly
			v := x.src(st.args[1])
			if st.lanes == 1 {
				st.cells[base] = v
			} else {
				for i := int64(0); i < st.lanes; i++ {
					st.cells[base+i] = lane(v, int(i))
				}
			}
		}
		return nil
	case aAtomicParam:
		// An atomic whose result the slice never consumes (the analyzer
		// declines otherwise): trace the read-modify-write pair, leave
		// the cell alone — its value can only feed data computation.
		idx := x.src(st.args[0]).I
		base := idx * st.lanes
		if base < 0 || base+st.lanes > int64(st.buf.Len()) {
			return fmt.Errorf("interp: load out of bounds: %s[%d] (len %d)", st.prm.PName, idx, st.buf.Len()/int(st.lanes))
		}
		x.accesses = append(x.accesses,
			Access{Param: st.prm, Index: idx, Bytes: st.bytes, Write: false},
			Access{Param: st.prm, Index: idx, Bytes: st.bytes, Write: true})
		return nil
	case aAtomicAlloca:
		idx := x.src(st.args[0]).I
		base := idx * st.lanes
		want := st.count * st.lanes
		if base < 0 || base+st.lanes > want {
			return fmt.Errorf("interp: load out of bounds: %s[%d] (len %d)", st.in.Mem.(*ir.Alloca).AName, idx, st.count)
		}
		return nil
	}

	// The remaining steps are needed pure computations.
	in := st.in
	var v Val
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		av, err := arithVal(in, x.src(st.args[0]), x.src(st.args[1]))
		if err != nil {
			return err
		}
		v = av
	case ir.OpICmp, ir.OpFCmp:
		v = compareVal(in, x.src(st.args[0]), x.src(st.args[1]))
	case ir.OpSelect:
		v = selectVal(in, x.src(st.args[0]), x.src(st.args[1]), x.src(st.args[2]))
	case ir.OpCast:
		v = castVal(x.src(st.args[0]), st.castFrom, in.T)
	case ir.OpCall:
		args := make([]Val, len(st.args))
		for i := range st.args {
			args[i] = x.src(st.args[i])
		}
		bv, err := builtinVal(in, args)
		if err != nil {
			return err
		}
		v = bv
	case ir.OpVecBuild:
		args := make([]Val, len(st.args))
		for i := range st.args {
			args[i] = x.src(st.args[i])
		}
		v = vecBuildVal(args)
	case ir.OpVecExtract:
		v = vecExtractVal(in, x.src(st.args[0]))
	case ir.OpVecInsert:
		args := make([]Val, len(st.args))
		for i := range st.args {
			args[i] = x.src(st.args[i])
		}
		v = vecInsertVal(in, args)
	default:
		return fmt.Errorf("interp: static executor met unplanned op %v", in.Op)
	}
	if st.reg >= 0 {
		x.regs[st.reg] = v
	}
	return nil
}

// readBufPlain mirrors readBuf without per-element atomics.
func readBufPlain(b *Buffer, base, lanes int64) Val {
	get := func(i int64) Val {
		if b.Elem.Base.IsFloat() {
			return FloatVal(b.F[i])
		}
		return IntVal(b.I[i])
	}
	if lanes == 1 {
		return get(base)
	}
	out := Val{Vec: make([]Val, lanes)}
	for i := int64(0); i < lanes; i++ {
		out.Vec[i] = get(base + i)
	}
	return out
}
