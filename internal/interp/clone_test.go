package interp

import (
	"testing"

	"repro/internal/opencl/ast"
)

// TestConfigCloneNoAliasing pins the deep-copy contract of Config.Clone:
// mutating the original after cloning — buffer contents, scalar map
// entries, even the lanes of a vector scalar — must not disturb the
// copy. host.Analyze snapshots its Config this way before handing it to
// the profiler, so an aliased slice here silently corrupts profiles.
func TestConfigCloneNoAliasing(t *testing.T) {
	orig := &Config{
		Range: NDRange{Global: [3]int64{32, 1, 1}, Local: [3]int64{16, 1, 1}},
		Buffers: map[string]*Buffer{
			"a": NewFloatBuffer(ast.KFloat, 4),
			"n": NewIntBuffer(ast.KInt, 4),
		},
		Scalars: map[string]Val{
			"k": IntVal(7),
			"v": {Vec: []Val{IntVal(1), IntVal(2)}},
		},
	}
	orig.Buffers["a"].F[0] = 1.5
	orig.Buffers["n"].I[0] = 9

	c := orig.Clone()

	// Mutate every layer of the original.
	orig.Range.Global[0] = 64
	orig.Buffers["a"].F[0] = -1
	orig.Buffers["n"].I[0] = -1
	orig.Buffers["extra"] = NewIntBuffer(ast.KInt, 1)
	orig.Scalars["k"] = IntVal(0)
	orig.Scalars["v"].Vec[1] = IntVal(99)
	orig.Scalars["extra"] = IntVal(1)

	if c.Range.Global[0] != 32 {
		t.Errorf("Range aliased: %v", c.Range.Global)
	}
	if got := c.Buffers["a"].F[0]; got != 1.5 {
		t.Errorf("float buffer aliased: %v", got)
	}
	if got := c.Buffers["n"].I[0]; got != 9 {
		t.Errorf("int buffer aliased: %v", got)
	}
	if _, ok := c.Buffers["extra"]; ok {
		t.Error("buffer map aliased")
	}
	if got := c.Scalars["k"].I; got != 7 {
		t.Errorf("scalar aliased: %v", got)
	}
	if got := c.Scalars["v"].Vec[1].I; got != 2 {
		t.Errorf("vector scalar lanes aliased: %v", got)
	}
	if _, ok := c.Scalars["extra"]; ok {
		t.Error("scalar map aliased")
	}

	// Nil handling: a nil Config and nil buffers clone to nil.
	if (*Config)(nil).Clone() != nil {
		t.Error("nil Config must clone to nil")
	}
	if (*Buffer)(nil).Clone() != nil {
		t.Error("nil Buffer must clone to nil")
	}
}
