package interp

import (
	"testing"

	"repro/internal/opencl/ast"
)

// spreadKernel writes each work-item's group index, so the profile's
// traces reveal exactly which groups ran.
func spreadConfig(groups int64) (*Config, *Buffer) {
	out := NewFloatBuffer(ast.KFloat, int(groups*16))
	return &Config{
		Range:   NDRange{Global: [3]int64{groups * 16}, Local: [3]int64{16}},
		Buffers: map[string]*Buffer{"out": out},
	}, out
}

// Each work-item writes group+1, so an untouched (zero) slot is
// distinguishable from group 0 having run.
const spreadSrc = `
__kernel void mark(__global float* out) {
    int i = get_global_id(0);
    out[i] = (float)(get_group_id(0) + 1);
}`

func TestProfileKernelSpreadCoversLaunch(t *testing.T) {
	k := compileKernel(t, spreadSrc, "mark")
	cfg, out := spreadConfig(16)
	prof, err := ProfileKernelSpread(k, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if prof.WorkItems != 4*16 {
		t.Fatalf("profiled WIs = %d, want 64 (4 groups of 16)", prof.WorkItems)
	}
	// Exactly 4 groups ran, spread across all 16 — not the first 4.
	ran := map[int64]bool{}
	for g := int64(0); g < 16; g++ {
		if out.F[g*16] == float64(g+1) {
			ran[g] = true
		}
	}
	if len(ran) != 4 {
		t.Fatalf("groups executed = %v, want 4", ran)
	}
	var beyondPrefix bool
	for g := range ran {
		if g >= 4 {
			beyondPrefix = true
		}
	}
	if !beyondPrefix {
		t.Errorf("sample %v is the launch prefix, want a spread", ran)
	}
}

func TestProfileKernelSpreadDegeneratesToFull(t *testing.T) {
	k := compileKernel(t, spreadSrc, "mark")
	cfg, out := spreadConfig(3)
	prof, err := ProfileKernelSpread(k, cfg, 8) // more than the launch has
	if err != nil {
		t.Fatal(err)
	}
	if prof.WorkItems != 3*16 {
		t.Fatalf("profiled WIs = %d, want all 48", prof.WorkItems)
	}
	for g := int64(0); g < 3; g++ {
		if out.F[g*16] != float64(g+1) {
			t.Errorf("group %d did not run", g)
		}
	}
}

func TestProfileKernelSpreadDeterministic(t *testing.T) {
	k := compileKernel(t, spreadSrc, "mark")
	cfg1, out1 := spreadConfig(32)
	cfg2, out2 := spreadConfig(32)
	if _, err := ProfileKernelSpread(k, cfg1, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileKernelSpread(k, cfg2, 5); err != nil {
		t.Fatal(err)
	}
	for i := range out1.F {
		if out1.F[i] != out2.F[i] {
			t.Fatalf("sample differs between runs at %d", i)
		}
	}
}
