package interp

import (
	"testing"

	"repro/internal/opencl/ast"
)

func spreadConfig(groups int64) (*Config, *Buffer) {
	out := NewFloatBuffer(ast.KFloat, int(groups*16))
	return &Config{
		Range:   NDRange{Global: [3]int64{groups * 16}, Local: [3]int64{16}},
		Buffers: map[string]*Buffer{"out": out},
	}, out
}

// Each work-item writes its global index, so the profile's traces
// reveal exactly which groups ran (the static fast path collects
// traces without mutating the buffer).
const spreadSrc = `
__kernel void mark(__global float* out) {
    int i = get_global_id(0);
    out[i] = (float)(get_group_id(0) + 1);
}`

// groupsRan recovers the executed group set from the profile's write
// trace (16 work-items per group in these launches).
func groupsRan(prof *Profile) map[int64]bool {
	ran := map[int64]bool{}
	for _, wi := range prof.Traces {
		for _, a := range wi {
			if a.Write {
				ran[a.Index/16] = true
			}
		}
	}
	return ran
}

func TestProfileKernelSpreadCoversLaunch(t *testing.T) {
	k := compileKernel(t, spreadSrc, "mark")
	cfg, _ := spreadConfig(16)
	prof, err := ProfileKernelSpread(k, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if prof.WorkItems != 4*16 {
		t.Fatalf("profiled WIs = %d, want 64 (4 groups of 16)", prof.WorkItems)
	}
	// Exactly 4 groups ran, spread across all 16 — not the first 4.
	ran := groupsRan(prof)
	if len(ran) != 4 {
		t.Fatalf("groups executed = %v, want 4", ran)
	}
	var beyondPrefix bool
	for g := range ran {
		if g >= 4 {
			beyondPrefix = true
		}
	}
	if !beyondPrefix {
		t.Errorf("sample %v is the launch prefix, want a spread", ran)
	}
}

func TestProfileKernelSpreadDegeneratesToFull(t *testing.T) {
	k := compileKernel(t, spreadSrc, "mark")
	cfg, _ := spreadConfig(3)
	prof, err := ProfileKernelSpread(k, cfg, 8) // more than the launch has
	if err != nil {
		t.Fatal(err)
	}
	if prof.WorkItems != 3*16 {
		t.Fatalf("profiled WIs = %d, want all 48", prof.WorkItems)
	}
	ran := groupsRan(prof)
	for g := int64(0); g < 3; g++ {
		if !ran[g] {
			t.Errorf("group %d did not run", g)
		}
	}
}

func TestProfileKernelSpreadDeterministic(t *testing.T) {
	k := compileKernel(t, spreadSrc, "mark")
	cfg1, _ := spreadConfig(32)
	cfg2, _ := spreadConfig(32)
	p1, err := ProfileKernelSpread(k, cfg1, 5)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ProfileKernelSpread(k, cfg2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d := p1.Diff(p2); d != "" {
		t.Fatalf("sample differs between runs: %s", d)
	}
}
