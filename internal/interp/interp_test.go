package interp

import (
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/opencl/ast"
)

func compileKernel(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	m, err := irgen.Compile("test.cl", []byte(src), nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k := m.Kernel(name)
	if k == nil {
		t.Fatalf("kernel %s not found", name)
	}
	return k
}

func TestVecAddExecution(t *testing.T) {
	k := compileKernel(t, `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = a[i] + b[i]; }
}`, "vadd")
	n := 64
	a := NewFloatBuffer(ast.KFloat, n)
	b := NewFloatBuffer(ast.KFloat, n)
	c := NewFloatBuffer(ast.KFloat, n)
	for i := 0; i < n; i++ {
		a.F[i] = float64(i)
		b.F[i] = float64(2 * i)
	}
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{int64(n)}, Local: [3]int64{16}},
		Buffers: map[string]*Buffer{"a": a, "b": b, "c": c},
		Scalars: map[string]Val{"n": IntVal(int64(n))},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if c.F[i] != float64(3*i) {
			t.Fatalf("c[%d] = %v, want %v", i, c.F[i], 3*i)
		}
	}
}

func TestLoopAccumulation(t *testing.T) {
	k := compileKernel(t, `
__kernel void rowsum(__global const float* m, __global float* out, int cols) {
    int r = get_global_id(0);
    float acc = 0.0f;
    for (int j = 0; j < cols; j++) { acc += m[r * cols + j]; }
    out[r] = acc;
}`, "rowsum")
	rows, cols := 8, 32
	m := NewFloatBuffer(ast.KFloat, rows*cols)
	out := NewFloatBuffer(ast.KFloat, rows)
	for i := range m.F {
		m.F[i] = 1.0
	}
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{int64(rows)}, Local: [3]int64{4}},
		Buffers: map[string]*Buffer{"m": m, "out": out},
		Scalars: map[string]Val{"cols": IntVal(int64(cols))},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		if out.F[r] != float64(cols) {
			t.Fatalf("out[%d] = %v, want %d", r, out.F[r], cols)
		}
	}
}

func TestLocalMemoryAndBarrier(t *testing.T) {
	// Reverse each 16-element tile using local memory.
	k := compileKernel(t, `
__kernel void rev(__global float* x) {
    __local float t[16];
    int l = get_local_id(0);
    int g = get_global_id(0);
    t[l] = x[g];
    barrier(CLK_LOCAL_MEM_FENCE);
    x[g] = t[15 - l];
}`, "rev")
	n := 32
	x := NewFloatBuffer(ast.KFloat, n)
	for i := 0; i < n; i++ {
		x.F[i] = float64(i)
	}
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{int64(n)}, Local: [3]int64{16}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		for l := 0; l < 16; l++ {
			want := float64(g*16 + (15 - l))
			if x.F[g*16+l] != want {
				t.Fatalf("x[%d] = %v, want %v", g*16+l, x.F[g*16+l], want)
			}
		}
	}
}

func Test2DKernel(t *testing.T) {
	k := compileKernel(t, `
__kernel void transpose(__global const float* in, __global float* out, int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x < w && y < h) { out[x * h + y] = in[y * w + x]; }
}`, "transpose")
	w, h := 8, 4
	in := NewFloatBuffer(ast.KFloat, w*h)
	out := NewFloatBuffer(ast.KFloat, w*h)
	for i := range in.F {
		in.F[i] = float64(i)
	}
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{int64(w), int64(h)}, Local: [3]int64{4, 2}},
		Buffers: map[string]*Buffer{"in": in, "out": out},
		Scalars: map[string]Val{"w": IntVal(int64(w)), "h": IntVal(int64(h))},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if out.F[x*h+y] != in.F[y*w+x] {
				t.Fatalf("transpose mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestMathBuiltins(t *testing.T) {
	k := compileKernel(t, `
__kernel void m(__global float* x) {
    int i = get_global_id(0);
    x[i] = sqrt(x[i]) + pow(2.0f, 3.0f) + fmax(1.0f, 2.0f) + fabs(-4.0f);
}`, "m")
	x := NewFloatBuffer(ast.KFloat, 4)
	for i := range x.F {
		x.F[i] = 16.0
	}
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{4}, Local: [3]int64{4}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	want := 4.0 + 8.0 + 2.0 + 4.0
	for i := range x.F {
		if math.Abs(x.F[i]-want) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, x.F[i], want)
		}
	}
}

func TestIntOpsAndCasts(t *testing.T) {
	k := compileKernel(t, `
__kernel void io(__global int* x) {
    int i = get_global_id(0);
    int v = x[i];
    x[i] = ((v * 3) / 2) % 7 + (v << 1) - (v >> 1) + (int)(1.9f);
}`, "io")
	x := NewIntBuffer(ast.KInt, 8)
	for i := range x.I {
		x.I[i] = int64(i + 1)
	}
	ref := make([]int64, 8)
	for i := range ref {
		v := int64(i + 1)
		ref[i] = ((v*3)/2)%7 + (v << 1) - (v >> 1) + 1
	}
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{8}, Local: [3]int64{8}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if x.I[i] != ref[i] {
			t.Fatalf("x[%d] = %d, want %d", i, x.I[i], ref[i])
		}
	}
}

func TestVectorKernel(t *testing.T) {
	k := compileKernel(t, `
__kernel void v4(__global float4* x) {
    int i = get_global_id(0);
    float4 v = x[i];
    float4 w = v * 2.0f;
    w.x = v.y + 1.0f;
    x[i] = w;
}`, "v4")
	// 2 float4 elements = 8 scalar slots.
	x := &Buffer{Elem: ast.Vector(ast.KFloat, 4), F: make([]float64, 8)}
	for i := range x.F {
		x.F[i] = float64(i)
	}
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{2}, Local: [3]int64{2}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	// Element 0: v = [0 1 2 3], w = [0*2 … ] then w.x = v.y+1 = 2.
	want0 := []float64{2, 2, 4, 6}
	for i, w := range want0 {
		if x.F[i] != w {
			t.Fatalf("x.F[%d] = %v, want %v", i, x.F[i], w)
		}
	}
}

func TestAtomicsAcrossWorkItems(t *testing.T) {
	k := compileKernel(t, `
__kernel void count(__global int* c, __global const int* data, int n) {
    int i = get_global_id(0);
    if (i < n) {
        if (data[i] > 0) { atomic_add(c, 1); }
    }
}`, "count")
	n := 128
	data := NewIntBuffer(ast.KInt, n)
	pos := 0
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			data.I[i] = 1
			pos++
		} else {
			data.I[i] = -1
		}
	}
	c := NewIntBuffer(ast.KInt, 1)
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{int64(n)}, Local: [3]int64{32}},
		Buffers: map[string]*Buffer{"c": c, "data": data},
		Scalars: map[string]Val{"n": IntVal(int64(n))},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	if c.I[0] != int64(pos) {
		t.Fatalf("count = %d, want %d", c.I[0], pos)
	}
}

func TestProfileTripCounts(t *testing.T) {
	k := compileKernel(t, `
__kernel void loop(__global const float* x, __global float* out, int n) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int j = 0; j < n; j++) { acc += x[j]; }
    out[i] = acc;
}`, "loop")
	n := 10
	x := NewFloatBuffer(ast.KFloat, 64)
	out := NewFloatBuffer(ast.KFloat, 64)
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{64}, Local: [3]int64{16}},
		Buffers: map[string]*Buffer{"x": x, "out": out},
		Scalars: map[string]Val{"n": IntVal(int64(n))},
	}
	prof, err := ProfileKernel(k, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if prof.WorkItems != 32 {
		t.Fatalf("profiled WIs = %d, want 32 (2 groups of 16)", prof.WorkItems)
	}
	// The loop body must execute n times per work-item.
	k.AnalyzeLoops()
	if len(k.Loops) != 1 {
		t.Fatalf("loops = %d", len(k.Loops))
	}
	var bodyCount float64
	for b, c := range prof.BlockCounts {
		if b.BName == "for.body" {
			bodyCount = c
		}
	}
	if bodyCount != float64(n) {
		t.Errorf("body count = %v, want %d", bodyCount, n)
	}
}

func TestProfileTraces(t *testing.T) {
	k := compileKernel(t, `
__kernel void copy(__global const float* a, __global float* b) {
    int i = get_global_id(0);
    b[i] = a[i];
}`, "copy")
	a := NewFloatBuffer(ast.KFloat, 64)
	b := NewFloatBuffer(ast.KFloat, 64)
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{64}, Local: [3]int64{16}},
		Buffers: map[string]*Buffer{"a": a, "b": b},
	}
	prof, err := ProfileKernel(k, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Traces) != 16 {
		t.Fatalf("traces = %d, want 16", len(prof.Traces))
	}
	for wi, tr := range prof.Traces {
		if len(tr) != 2 {
			t.Fatalf("wi %d: %d accesses, want 2", wi, len(tr))
		}
		if tr[0].Write || !tr[1].Write {
			t.Errorf("wi %d: access order wrong: %+v", wi, tr)
		}
		if tr[0].Param.PName != "a" || tr[1].Param.PName != "b" {
			t.Errorf("wi %d: wrong buffers %s/%s", wi, tr[0].Param.PName, tr[1].Param.PName)
		}
		if tr[0].Index != int64(wi) {
			t.Errorf("wi %d: index %d", wi, tr[0].Index)
		}
	}
}

func TestOutOfBoundsDetected(t *testing.T) {
	k := compileKernel(t, `
__kernel void oob(__global float* x) {
    int i = get_global_id(0);
    x[i + 100] = 1.0f;
}`, "oob")
	x := NewFloatBuffer(ast.KFloat, 8)
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{8}, Local: [3]int64{8}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestMissingArgument(t *testing.T) {
	k := compileKernel(t, `
__kernel void k(__global float* x, int n) { x[0] = (float)n; }`, "k")
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{1}, Local: [3]int64{1}},
		Buffers: map[string]*Buffer{"x": NewFloatBuffer(ast.KFloat, 1)},
	}
	if err := Run(k, cfg); err == nil {
		t.Fatal("expected missing-argument error")
	}
}

func TestHelperFunctionExecution(t *testing.T) {
	k := compileKernel(t, `
float sq(float v) { return v * v; }
float hyp(float a, float b) { return sqrt(sq(a) + sq(b)); }
__kernel void k(__global float* x) {
    int i = get_global_id(0);
    x[i] = hyp(3.0f, 4.0f);
}`, "k")
	x := NewFloatBuffer(ast.KFloat, 2)
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{2}, Local: [3]int64{2}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x.F[0]-5.0) > 1e-9 {
		t.Fatalf("hyp = %v, want 5", x.F[0])
	}
}

func TestWhileLoopExecution(t *testing.T) {
	k := compileKernel(t, `
__kernel void collatz(__global int* x) {
    int i = get_global_id(0);
    int v = x[i];
    int steps = 0;
    while (v != 1) {
        if (v % 2 == 0) { v = v / 2; } else { v = 3 * v + 1; }
        steps++;
    }
    x[i] = steps;
}`, "collatz")
	x := NewIntBuffer(ast.KInt, 3)
	x.I[0], x.I[1], x.I[2] = 6, 7, 27
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{3}, Local: [3]int64{1}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	want := []int64{8, 16, 111}
	for i := range want {
		if x.I[i] != want[i] {
			t.Fatalf("collatz(%d) steps = %d, want %d", i, x.I[i], want[i])
		}
	}
}

func TestBarrierCounting(t *testing.T) {
	k := compileKernel(t, `
__kernel void b2(__global float* x) {
    __local float t[8];
    int l = get_local_id(0);
    t[l] = x[l];
    barrier(CLK_LOCAL_MEM_FENCE);
    t[l] = t[7 - l];
    barrier(CLK_LOCAL_MEM_FENCE);
    x[l] = t[l];
}`, "b2")
	x := NewFloatBuffer(ast.KFloat, 8)
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{8}, Local: [3]int64{8}},
		Buffers: map[string]*Buffer{"x": x},
	}
	prof, err := ProfileKernel(k, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Barriers != 2 {
		t.Errorf("barriers per WI = %v, want 2", prof.Barriers)
	}
}
