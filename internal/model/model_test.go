package model_test

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/model"
	"repro/internal/opencl/ast"
)

func compileKernel(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	m, err := irgen.Compile("test.cl", []byte(src), nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k := m.Kernel(name)
	if k == nil {
		t.Fatalf("kernel %s not found", name)
	}
	return k
}

const vadd = `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = a[i] + b[i]; }
}`

func vaddLaunch(n, wg int64) *interp.Config {
	mk := func() *interp.Buffer {
		b := interp.NewFloatBuffer(ast.KFloat, int(n))
		for i := range b.F {
			b.F[i] = float64(i % 7)
		}
		return b
	}
	return &interp.Config{
		Range:   interp.NDRange{Global: [3]int64{n}, Local: [3]int64{wg}},
		Buffers: map[string]*interp.Buffer{"a": mk(), "b": mk(), "c": mk()},
		Scalars: map[string]interp.Val{"n": interp.IntVal(n)},
	}
}

func analyze(t *testing.T, src, name string, n, wg int64) *model.Analysis {
	t.Helper()
	k := compileKernel(t, src, name)
	an, err := model.Analyze(context.Background(), k, device.Virtex7(), vaddLaunch(n, wg), model.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestAnalyzeBasics(t *testing.T) {
	an := analyze(t, vadd, "vadd", 4096, 64)
	if an.NWI != 4096 || an.WGSize != 64 {
		t.Errorf("NWI=%d WGSize=%d", an.NWI, an.WGSize)
	}
	if an.Mem.BurstsPerWI <= 0 {
		t.Error("no memory behaviour classified")
	}
	if len(an.Freq) == 0 {
		t.Error("no block frequencies")
	}
}

func TestPipeliningHelps(t *testing.T) {
	an := analyze(t, vadd, "vadd", 4096, 64)
	off := an.Predict(model.Design{WGSize: 64, PE: 1, CU: 1, Mode: model.ModeBarrier})
	on := an.Predict(model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModeBarrier})
	if on.Cycles >= off.Cycles {
		t.Errorf("pipelining did not help: %v vs %v", on.Cycles, off.Cycles)
	}
	if on.IIComp >= off.IIComp {
		t.Errorf("II with pipeline (%d) should be < without (%d)", on.IIComp, off.IIComp)
	}
}

func TestEquation1Structure(t *testing.T) {
	// For NPE = NCU = 1 in barrier mode, L_comp^CU = II·(Nwg−1) + D.
	an := analyze(t, vadd, "vadd", 4096, 64)
	e := an.Predict(model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModeBarrier})
	want := float64(e.IIComp)*(64-1) + float64(e.Depth)
	if e.LCompCU != want {
		t.Errorf("L_comp^CU = %v, want Eq.1 value %v", e.LCompCU, want)
	}
}

func TestEquation10Structure(t *testing.T) {
	an := analyze(t, vadd, "vadd", 4096, 64)
	e := an.Predict(model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModeBarrier})
	want := e.LMemWI*float64(an.NWI) + e.LCompKernel
	if e.Cycles < want-1 || e.Cycles > want+1 {
		t.Errorf("barrier cycles = %v, want Eq.10 value %v", e.Cycles, want)
	}
}

func TestBarrierKernelForcedMode(t *testing.T) {
	src := `
__kernel void k(__global float* x) {
    __local float t[WG];
    int l = get_local_id(0);
    t[l] = x[l];
    barrier(CLK_LOCAL_MEM_FENCE);
    x[l] = t[0];
}`
	m, err := irgen.Compile("t.cl", []byte(src), map[string]string{"WG": "64"})
	if err != nil {
		t.Fatal(err)
	}
	k := m.Kernels[0]
	d := model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModePipeline}
	if model.EffectiveMode(k, d) != model.ModeBarrier {
		t.Error("barrier kernel not forced to barrier mode")
	}
}

func TestMoreCUsNeverSlower(t *testing.T) {
	an := analyze(t, vadd, "vadd", 4096, 64)
	c1 := an.Predict(model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModePipeline})
	c4 := an.Predict(model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 4, Mode: model.ModePipeline})
	if c4.Cycles > c1.Cycles*1.05 {
		t.Errorf("4 CUs (%v) slower than 1 CU (%v)", c4.Cycles, c1.Cycles)
	}
}

func TestNPEBoundedByPorts(t *testing.T) {
	src := `
__kernel void k(__global float* x) {
    __local float t[WG];
    int l = get_local_id(0);
    t[l] = x[l];
    barrier(CLK_LOCAL_MEM_FENCE);
    float s = t[l] + t[(l + 1) % WG] + t[(l + 2) % WG] + t[(l + 3) % WG]
            + t[(l + 4) % WG] + t[(l + 5) % WG] + t[(l + 6) % WG] + t[(l + 7) % WG];
    x[l] = s;
}`
	m, err := irgen.Compile("t.cl", []byte(src), map[string]string{"WG": "64"})
	if err != nil {
		t.Fatal(err)
	}
	k := m.Kernels[0]
	buf := interp.NewFloatBuffer(ast.KFloat, 64)
	cfg := &interp.Config{
		Range:   interp.NDRange{Global: [3]int64{64}, Local: [3]int64{64}},
		Buffers: map[string]*interp.Buffer{"x": buf},
	}
	an, err := model.Analyze(context.Background(), k, device.Virtex7(), cfg, model.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e := an.Predict(model.Design{WGSize: 64, WIPipeline: true, PE: 16, CU: 1, Mode: model.ModeBarrier})
	// 8 local reads per WI vs 8 read ports: effective PE parallelism 1.
	if e.NPE > 2 {
		t.Errorf("NPE = %d; expected the 8-reads/WI kernel to be port-bound", e.NPE)
	}
}

func TestDefaultSpaceComposition(t *testing.T) {
	ds := model.DefaultSpace(256, 16, 4)
	// 5 wg sizes × (1 non-pipelined PE + 5 pipelined PEs) × 3 CUs × 2 modes.
	if len(ds) != 5*6*3*2 {
		t.Errorf("design space size = %d, want 180", len(ds))
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if seen[d.String()] {
			t.Fatalf("duplicate design %v", d)
		}
		seen[d.String()] = true
		if !d.WIPipeline && d.PE > 1 {
			t.Errorf("non-pipelined multi-PE design generated: %v", d)
		}
	}
}

func TestAblationsChangeEstimates(t *testing.T) {
	kb := bench.Find("srad", "srad")
	if kb == nil {
		t.Fatal("srad kernel missing")
	}
	f, err := kb.Compile(64)
	if err != nil {
		t.Fatal(err)
	}
	an, err := model.Analyze(context.Background(), f, device.Virtex7(), kb.Config(64), model.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModeBarrier}
	full := an.Predict(d).Cycles
	mem := an.PredictWith(d, model.Ablations{SingleMemLatency: true}).Cycles
	co := an.PredictWith(d, model.Ablations{NoCoalescing: true}).Cycles
	if mem == full {
		t.Error("A1 (single memory latency) changed nothing")
	}
	if co <= full {
		t.Error("A4 (no coalescing) should inflate the memory term")
	}
}

func TestEstimateSecondsConsistent(t *testing.T) {
	an := analyze(t, vadd, "vadd", 4096, 64)
	e := an.Predict(model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModePipeline})
	want := e.Cycles / (200e6)
	if e.Seconds < want*0.999 || e.Seconds > want*1.001 {
		t.Errorf("seconds = %v, want %v", e.Seconds, want)
	}
}

func TestWGSizeAffectsBatches(t *testing.T) {
	an64 := analyze(t, vadd, "vadd", 4096, 64)
	an256 := analyze(t, vadd, "vadd", 4096, 256)
	d := func(wg int64) model.Design {
		return model.Design{WGSize: wg, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModePipeline}
	}
	e64 := an64.Predict(d(64))
	e256 := an256.Predict(d(256))
	// Fewer work-groups means less dispatch overhead; for this memory-
	// bound kernel both should be within 2x but not equal.
	if e64.Cycles == e256.Cycles {
		t.Error("work-group size had no effect at all")
	}
}
