package model

import (
	"repro/internal/cdfg"
	"repro/internal/sched"
	"repro/internal/trace"
)

// DesignBounds carries the design-independent quantities of one analysis
// plus provable minima of the design-dependent schedule terms, taken over
// an explicit (PE, CU) lattice. Guided search (package dse) combines them
// into sound lower bounds on Predict(d).Cycles for any design whose PE
// and CU values come from that lattice — the soundness contract is
// exactly "minimum over the enumerated resource configurations", so a
// design outside the lattice voids it.
//
// The derivation (docs/MODEL.md "Guided exploration"):
//
//   - LMemWI (Eq. 9) and ΔL_schedule are independent of the design, so
//     LMemWI·N_wi and ΔL_schedule·⌈N_wi/N_wi^wg⌉ floor every estimate at
//     this WG size (Eq. 10's serialized transfers, Eq. 11's channel
//     floor, and the dispatcher floor are all applied by PredictWith).
//   - II and Depth depend on the design only through the PE's resource
//     budget (Eq. 4: the per-PE DSP slots shrink as PE·CU grows), so
//     their minima over every distinct resource configuration of the
//     lattice bound any lattice design's schedule from below.
type DesignBounds struct {
	// WGSize and NWI are the launch geometry the analysis was taken at.
	WGSize int64
	NWI    int64
	// DLS is the platform's ΔL_schedule in cycles.
	DLS float64
	// LMemWI is Eq. 9's per-work-item global-memory latency, computed
	// exactly as PredictWith computes it (bitwise-identical floats, so
	// floor comparisons against estimates are exact).
	LMemWI float64
	// HasBarrier records that every design runs in effective barrier
	// mode (§3.5).
	HasBarrier bool
	// PipeII and PipeDepth are the minima of II_comp^wi and D_comp^PE
	// (Eq. 1–4, SMS schedule) over the lattice's resource configurations.
	PipeII, PipeDepth int
	// SerialDepth is the minimum non-pipelined work-item latency over the
	// same configurations (II = Depth for a re-issued PE).
	SerialDepth int
}

// PEValues enumerates the PE parallelism values of the default design
// space: powers of two up to maxPE.
func PEValues(maxPE int) []int {
	var out []int
	for pe := 1; pe <= maxPE; pe *= 2 {
		out = append(out, pe)
	}
	return out
}

// CUValues enumerates the CU counts of the default design space: powers
// of two up to maxCU.
func CUValues(maxCU int) []int {
	var out []int
	for cu := 1; cu <= maxCU; cu *= 2 {
		out = append(out, cu)
	}
	return out
}

// DesignBounds computes the schedule minima over the (peVals × cuVals)
// lattice. Each distinct resource configuration (Eq. 4's per-PE issue
// limits; typically only a couple are distinct after the DSP-slot clamp)
// is scheduled once, so the cost is a few schedules per work-group size —
// far below one full design-space sweep.
func (a *Analysis) DesignBounds(peVals, cuVals []int) DesignBounds {
	b := DesignBounds{
		WGSize:     a.WGSize,
		NWI:        a.NWI,
		DLS:        float64(a.Platform.WGSchedOverhead),
		LMemWI:     trace.MemLatencyWI(a.Mem, a.PatLat),
		HasBarrier: a.F.HasBarrier,
	}
	seen := map[sched.Resources]bool{}
	first := true
	for _, pe := range peVals {
		for _, cu := range cuVals {
			res := peResources(a.Platform, Design{PE: pe, CU: cu})
			if seen[res] {
				continue
			}
			seen[res] = true
			scfg := &sched.Config{Table: a.Table, Res: res}
			g := cdfg.Build(a.F, a.Freq, scfg)
			r := sched.SMS(a.F, g.Freq, g.BlockOffsets, scfg)
			sd := sched.SerialDepth(a.F, g.Freq, scfg)
			if first {
				b.PipeII, b.PipeDepth, b.SerialDepth = r.II, r.Depth, sd
				first = false
				continue
			}
			if r.II < b.PipeII {
				b.PipeII = r.II
			}
			if r.Depth < b.PipeDepth {
				b.PipeDepth = r.Depth
			}
			if sd < b.SerialDepth {
				b.SerialDepth = sd
			}
		}
	}
	if first { // empty lattice: degenerate but well-formed bounds
		b.PipeII, b.PipeDepth, b.SerialDepth = 1, 1, 1
	}
	return b
}
