// Package model implements the FlexCL analytical performance model
// (paper §3): the processing-element model (Eq. 1–4), the compute-unit
// model (Eq. 5–6), the kernel computation model (Eq. 7–8), the global
// memory model (Eq. 9) and their integration under the barrier (Eq. 10)
// and pipeline (Eq. 11–12) communication modes.
package model

import (
	"fmt"

	"repro/internal/ir"
)

// CommMode is the computation/global-memory communication mode (§3.5).
type CommMode int

// Communication modes.
const (
	// ModeBarrier separates computation and global transfers; latencies
	// add (Eq. 10).
	ModeBarrier CommMode = iota
	// ModePipeline overlaps global transfers with computation (Eq. 11).
	ModePipeline
)

func (m CommMode) String() string {
	if m == ModePipeline {
		return "pipeline"
	}
	return "barrier"
}

// Design is one point of the optimization design space (§4.1): work-group
// size, work-item pipelining, PE and CU parallelism, and communication
// mode.
type Design struct {
	// WGSize is N_wi^wg, the work-items per work-group.
	WGSize int64
	// WIPipeline enables work-item pipelining inside a PE.
	WIPipeline bool
	// PE is the requested PE parallelism P per compute unit.
	PE int
	// CU is the number of compute units C.
	CU int
	// Mode is the communication mode. Kernels containing barriers are
	// forced to ModeBarrier regardless (§3.5).
	Mode CommMode
}

// String renders a compact design label (used in reports and Figure 4).
func (d Design) String() string {
	p := "-"
	if d.WIPipeline {
		p = "wi"
	}
	return fmt.Sprintf("wg%d/pipe=%s/pe%d/cu%d/%s", d.WGSize, p, d.PE, d.CU, d.Mode)
}

// EffectiveMode returns the communication mode actually synthesizable for
// the kernel: kernels with work-group barriers stage their data through
// local memory and synchronize, which serializes global transfer phases
// against computation.
func EffectiveMode(f *ir.Func, d Design) CommMode {
	if f.HasBarrier {
		return ModeBarrier
	}
	return d.Mode
}

// DefaultSpace enumerates the design space swept in §4: work-group sizes
// × pipelining × PE parallelism × CU count × communication mode. Kernel
// specs may restrict it further (e.g. reqd_work_group_size).
func DefaultSpace(maxWG int64, maxPE, maxCU int) []Design {
	var wgs []int64
	for wg := int64(16); wg <= maxWG; wg *= 2 {
		wgs = append(wgs, wg)
	}
	if len(wgs) == 0 {
		wgs = []int64{maxWG}
	}
	pes := PEValues(maxPE)
	cus := CUValues(maxCU)
	var out []Design
	for _, wg := range wgs {
		for _, pipe := range []bool{false, true} {
			for _, pe := range pes {
				if !pipe && pe > 1 {
					// PE replication without pipelining is not generated
					// by the flow: parallel PEs share the pipeline
					// control.
					continue
				}
				for _, cu := range cus {
					for _, mode := range []CommMode{ModeBarrier, ModePipeline} {
						out = append(out, Design{
							WGSize: wg, WIPipeline: pipe, PE: pe, CU: cu, Mode: mode,
						})
					}
				}
			}
		}
	}
	return out
}
