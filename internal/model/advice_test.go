package model_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/model"
)

func analyzeBench(t *testing.T, benchName, kernel string, wg int64) *model.Analysis {
	t.Helper()
	k := bench.Find(benchName, kernel)
	if k == nil {
		t.Fatalf("kernel %s/%s missing", benchName, kernel)
	}
	f, err := k.Compile(wg)
	if err != nil {
		t.Fatal(err)
	}
	an, err := model.Analyze(context.Background(), f, device.Virtex7(), k.Config(wg), model.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestDiagnoseMemoryBound(t *testing.T) {
	// nn in barrier mode is dominated by its global transfers.
	an := analyzeBench(t, "nn", "nn", 64)
	e := an.Predict(model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModeBarrier})
	d := an.Diagnose(e)
	if d.Bottleneck != model.BoundMemory {
		t.Errorf("bottleneck = %v, want memory", d.Bottleneck)
	}
	if len(d.Hints) == 0 {
		t.Error("no hints produced")
	}
}

func TestDiagnoseComputeBound(t *testing.T) {
	// kmeans/center does 40 FLOPs per element fetched.
	an := analyzeBench(t, "kmeans", "center", 64)
	e := an.Predict(model.Design{WGSize: 64, WIPipeline: false, PE: 1, CU: 1, Mode: model.ModePipeline})
	d := an.Diagnose(e)
	if d.Bottleneck != model.BoundCompute {
		t.Errorf("bottleneck = %v, want compute", d.Bottleneck)
	}
	// Non-pipelined design must be told to pipeline.
	joined := strings.Join(d.Hints, " ")
	if !strings.Contains(joined, "pipelining") {
		t.Errorf("hints missing pipelining advice: %v", d.Hints)
	}
}

func TestResourceUsageScalesWithParallelism(t *testing.T) {
	an := analyzeBench(t, "kmeans", "center", 64)
	small := an.ResourceUsage(model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1})
	big := an.ResourceUsage(model.Design{WGSize: 64, WIPipeline: true, PE: 8, CU: 4})
	if big.DSPs != small.DSPs*32 {
		t.Errorf("DSPs should scale ×32: %d vs %d", big.DSPs, small.DSPs)
	}
	if !small.Feasible {
		t.Error("1 PE × 1 CU must fit the part")
	}
}

func TestResourceUsageBRAM(t *testing.T) {
	an := analyzeBench(t, "hotspot", "hotspot", 256)
	one := an.ResourceUsage(model.Design{WGSize: 256, WIPipeline: true, PE: 1, CU: 1})
	four := an.ResourceUsage(model.Design{WGSize: 256, WIPipeline: true, PE: 1, CU: 4})
	if one.BRAMKb <= 0 {
		t.Error("hotspot's local tile not accounted")
	}
	if four.BRAMKb != one.BRAMKb*4 {
		t.Errorf("BRAM should scale with CUs: %d vs %d", four.BRAMKb, one.BRAMKb)
	}
}

func TestBottleneckStrings(t *testing.T) {
	names := map[model.Bottleneck]string{
		model.BoundCompute:    "compute",
		model.BoundMemory:     "memory",
		model.BoundRecurrence: "recurrence",
		model.BoundPorts:      "ports",
		model.BoundScheduler:  "scheduler",
	}
	for b, want := range names {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), want)
		}
	}
}
