package model

import (
	"fmt"
	"math"

	"repro/internal/device"
)

// Resources is the estimated FPGA resource usage of one design point —
// used to prune infeasible configurations before they reach synthesis.
type Resources struct {
	DSPs     int // DSP slices across all CUs and PEs
	BRAMKb   int // block RAM for local memories, Kb
	Feasible bool
}

// ResourceUsage estimates the design's resource footprint: each PE
// replicates the kernel's DSP-backed cores, each CU replicates its local
// memories, and the whole kernel replicates per CU.
func (a *Analysis) ResourceUsage(d Design) Resources {
	var dspPerPE float64
	for _, b := range a.F.Blocks {
		for _, in := range b.Instrs {
			cl := device.Classify(in)
			if c := a.Table.DSPCost(cl); c > 0 {
				dspPerPE += float64(c * in.T.Lanes())
			}
		}
	}
	var localBits int64
	for _, al := range a.F.LocalAllocas() {
		localBits += al.Count * int64(al.Elem.ElemSize()) * 8
	}
	r := Resources{
		DSPs:   int(dspPerPE) * d.PE * d.CU,
		BRAMKb: int(localBits/1024) * d.CU,
	}
	r.Feasible = r.DSPs <= a.Platform.DSPTotal && r.BRAMKb <= a.Platform.BRAMTotalKb
	return r
}

// Bottleneck identifies what limits a design's performance.
type Bottleneck int

// Bottleneck classes.
const (
	// BoundCompute: the work-item pipeline's II or depth dominates.
	BoundCompute Bottleneck = iota
	// BoundMemory: the global-memory channel dominates.
	BoundMemory
	// BoundRecurrence: an inter-work-item dependence caps the II.
	BoundRecurrence
	// BoundPorts: local-memory ports or DSP cores cap the II.
	BoundPorts
	// BoundScheduler: work-group dispatch overhead dominates.
	BoundScheduler
)

func (b Bottleneck) String() string {
	return [...]string{"compute", "memory", "recurrence", "ports", "scheduler"}[b]
}

// Diagnosis explains a prediction: the binding bottleneck and actionable
// restructuring hints (the §1 use case: "identify the performance
// bottlenecks on FPGAs, give code restructuring hints").
type Diagnosis struct {
	Bottleneck Bottleneck
	Hints      []string
}

// Diagnose classifies the bottleneck of an estimate and suggests code or
// configuration changes.
func (a *Analysis) Diagnose(e *Estimate) *Diagnosis {
	d := &Diagnosis{}
	nwg := float64(e.Design.WGSize)
	groups := math.Ceil(float64(a.NWI) / nwg)
	dispatch := float64(a.Platform.WGSchedOverhead) * groups
	memTotal := e.LMemWI * float64(a.NWI)

	switch {
	case dispatch >= e.Cycles*0.9:
		d.Bottleneck = BoundScheduler
		d.Hints = append(d.Hints,
			"work-group dispatch dominates: increase the work-group size so fewer groups are scheduled",
			fmt.Sprintf("at WG=%d the launch needs %.0f dispatches of %d cycles each",
				e.Design.WGSize, groups, a.Platform.WGSchedOverhead))
	case memTotal >= e.Cycles*0.6:
		d.Bottleneck = BoundMemory
		d.Hints = append(d.Hints,
			"the global-memory channel is saturated: restructure accesses for unit stride so bursts coalesce (f = 512/width)",
			"stage reused data in __local memory behind a barrier instead of re-reading global buffers")
		if f := a.Mem.CoalescingFactor(); f < 2 {
			d.Hints = append(d.Hints, fmt.Sprintf(
				"coalescing factor is only %.1f; consecutive work-items should touch consecutive addresses", f))
		}
		var missFrac float64
		var total float64
		for p, n := range a.Mem.N {
			total += n
			if p >= 4 {
				missFrac += n
			}
		}
		if total > 0 && missFrac/total > 0.5 {
			d.Hints = append(d.Hints, fmt.Sprintf(
				"%.0f%% of accesses miss the DRAM row buffer; tile loops so each work-group stays within rows",
				missFrac/total*100))
		}
	case e.RecMII > e.ResMII && e.RecMII > 1 && e.IIComp >= e.RecMII:
		d.Bottleneck = BoundRecurrence
		d.Hints = append(d.Hints,
			fmt.Sprintf("an inter-work-item dependence forces II >= %d: break the recurrence or increase its distance", e.RecMII),
			"consider privatizing the carried value and combining partial results after the loop")
	case e.ResMII > 1 && e.IIComp >= e.ResMII:
		d.Bottleneck = BoundPorts
		d.Hints = append(d.Hints,
			fmt.Sprintf("local-memory ports or DSP cores cap II at %d: partition __local arrays into more banks", e.ResMII),
			"or reduce per-work-item local accesses by widening the data type (vector loads)")
	default:
		d.Bottleneck = BoundCompute
		d.Hints = append(d.Hints,
			fmt.Sprintf("computation-bound (II=%d, depth=%d): increase PE or CU parallelism", e.IIComp, e.Depth))
		if !e.Design.WIPipeline {
			d.Hints = append(d.Hints, "enable work-item pipelining — the largest single win for this kernel")
		}
	}
	return d
}
