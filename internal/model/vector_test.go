package model_test

import (
	"context"
	"testing"

	"repro/internal/device"
	"repro/internal/interp"
	"repro/internal/model"
	"repro/internal/opencl/ast"
)

// TestVectorizationModeled covers footnote 1 of §3.3.2: kernel
// vectorization via OpenCL vector types is modeled through the PE
// datapath — a float4 kernel moves the same data with a quarter of the
// work-items and must not be predicted slower than its scalar twin.
func TestVectorizationModeled(t *testing.T) {
	scalarK := compileKernel(t, `
__kernel void scale1(__global const float* in, __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) { out[i] = in[i] * 2.0f; }
}`, "scale1")
	vecK := compileKernel(t, `
__kernel void scale4(__global const float4* in, __global float4* out, int n) {
    int i = get_global_id(0);
    if (i < n) { out[i] = in[i] * 2.0f; }
}`, "scale4")

	const elems = 4096
	p := device.Virtex7()

	scalarCfg := &interp.Config{
		Range: interp.NDRange{Global: [3]int64{elems}, Local: [3]int64{64}},
		Buffers: map[string]*interp.Buffer{
			"in":  interp.NewFloatBuffer(ast.KFloat, elems),
			"out": interp.NewFloatBuffer(ast.KFloat, elems),
		},
		Scalars: map[string]interp.Val{"n": interp.IntVal(elems)},
	}
	vecCfg := &interp.Config{
		Range: interp.NDRange{Global: [3]int64{elems / 4}, Local: [3]int64{64}},
		Buffers: map[string]*interp.Buffer{
			"in":  {Elem: ast.Vector(ast.KFloat, 4), F: make([]float64, elems)},
			"out": {Elem: ast.Vector(ast.KFloat, 4), F: make([]float64, elems)},
		},
		Scalars: map[string]interp.Val{"n": interp.IntVal(elems / 4)},
	}

	anS, err := model.Analyze(context.Background(), scalarK, p, scalarCfg, model.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	anV, err := model.Analyze(context.Background(), vecK, p, vecCfg, model.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}

	d := model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModePipeline}
	eS := anS.Predict(d)
	eV := anV.Predict(d)
	if eV.Cycles > eS.Cycles {
		t.Errorf("float4 kernel predicted slower (%v) than scalar (%v) for the same data volume",
			eV.Cycles, eS.Cycles)
	}
	// Both move 16 KiB; the vector kernel's per-WI traffic is 4x wider,
	// so its per-WI burst count must be larger while total bursts match.
	totalS := anS.Mem.BurstsPerWI * float64(anS.NWI)
	totalV := anV.Mem.BurstsPerWI * float64(anV.NWI)
	if totalV < totalS*0.8 || totalV > totalS*1.2 {
		t.Errorf("total burst mismatch: scalar %v vs vector %v", totalS, totalV)
	}
}
