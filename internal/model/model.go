package model

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cdfg"
	"repro/internal/device"
	"repro/internal/dram"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Analysis bundles everything FlexCL extracts from one kernel at one
// work-group size: the profiled trip counts, the classified global-memory
// trace, and the profiled device latencies. It is independent of the
// remaining design parameters, so one Analysis serves many design points.
type Analysis struct {
	F        *ir.Func
	Platform *device.Platform
	Table    *device.LatencyTable
	PatLat   dram.PatternLatencies

	// Freq is average block executions per work-item.
	Freq map[*ir.Block]float64
	// Mem is the classified coalesced global-memory behaviour per WI.
	Mem *trace.Classified
	// NWI is N_wi^kernel, the total work-items of the launch.
	NWI int64
	// WGSize is the work-group size the profile was taken at.
	WGSize int64
	// Barriers is the barrier crossings per work-item.
	Barriers float64
}

// AnalysisOptions tunes Analyze.
type AnalysisOptions struct {
	// ProfileGroups is how many work-groups the dynamic profiler runs
	// (§3.2: "only a few work-groups are profiled"). Default 2.
	ProfileGroups int
	// DRAMSamples sets the micro-benchmark length for pattern profiling.
	DRAMSamples int
	// OpSamples sets the op-latency profiling sample count.
	OpSamples int
}

// Analyze runs FlexCL's kernel analysis (§3.2) for one kernel and launch
// configuration: dynamic profiling for trip counts and the memory trace,
// plus device micro-benchmark profiling. The interp buffers are copies of
// workload inputs and are mutated.
//
// ctx bounds the analysis: cancellation or an expired deadline is
// honored at each stage boundary (before profiling, before trace
// classification, before device profiling), returning ctx.Err(). Callers
// that share one analysis across requests should analyze under a
// detached context instead (see dse.PrepCache), so one impatient
// request cannot poison the shared fill.
func Analyze(ctx context.Context, f *ir.Func, p *device.Platform, cfg *interp.Config, opts AnalysisOptions) (*Analysis, error) {
	if opts.ProfileGroups <= 0 {
		opts.ProfileGroups = 8
	}
	if opts.DRAMSamples <= 0 {
		opts.DRAMSamples = 4096
	}
	if opts.OpSamples <= 0 {
		opts.OpSamples = 256
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("model: analyzing %s: %w", f.Name, err)
	}
	f.EnsureLoops()
	_, psp := telemetry.Start(ctx, "profile")
	prof, err := interp.ProfileKernel(f, cfg, opts.ProfileGroups)
	if prof != nil {
		psp.Annotate("source", string(prof.Source))
	}
	psp.Annotate("groups", fmt.Sprint(opts.ProfileGroups))
	psp.End()
	if err != nil {
		return nil, fmt.Errorf("model: profiling %s: %w", f.Name, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("model: analyzing %s: %w", f.Name, err)
	}
	_, msp := telemetry.Start(ctx, "memtrace")
	layout := trace.NewLayout(f, trace.BufferCounts(f, cfg), p.DRAM)
	nd := cfg.Range.Normalize()
	cls := trace.ClassifyGrouped(prof.Traces, nd.WorkGroupSize(), layout, p.DRAM, p.MemAccessUnitBits/8)
	msp.Annotate("bursts_per_wi", fmt.Sprintf("%.3f", cls.BurstsPerWI))
	msp.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("model: analyzing %s: %w", f.Name, err)
	}
	_, dsp := telemetry.Start(ctx, "devprofile")
	table := device.Profile(p, opts.OpSamples)
	patLat := dram.ProfilePatterns(p.DRAM, opts.DRAMSamples, device.HashString(p.Name))
	dsp.End()
	return &Analysis{
		F:        f,
		Platform: p,
		Table:    table,
		PatLat:   patLat,
		Freq:     prof.BlockCounts,
		Mem:      cls,
		NWI:      nd.TotalWorkItems(),
		WGSize:   nd.WorkGroupSize(),
		Barriers: prof.Barriers,
	}, nil
}

// Estimate is the model's prediction for one design point, with the full
// breakdown of intermediate quantities for inspection and reporting.
type Estimate struct {
	Design Design
	Mode   CommMode // effective mode

	// PE model (Eq. 1–4).
	IIComp int // II_comp^wi
	Depth  int // D_comp^PE
	RecMII int
	ResMII int

	// Parallelism (Eq. 6, 8).
	NPE int
	NCU int

	// Memory model (Eq. 9).
	LMemWI float64

	// Composite latencies.
	LCompCU     float64 // Eq. 5
	LCompKernel float64 // Eq. 7
	Cycles      float64 // Eq. 10 or 11
	Seconds     float64
}

// Clone returns an independent copy of the estimate. Estimate is a flat
// value type (no interior pointers), so a shallow copy is a deep copy;
// Clone exists so shared caches can hand out copies without aliasing
// their stored entry (see dse.PredCache).
func (e *Estimate) Clone() *Estimate {
	if e == nil {
		return nil
	}
	c := *e
	return &c
}

// peResources derives the scheduler's per-PE issue limits from the
// platform and the design's parallelism: local ports and DSP cores are
// CU-level resources shared by the replicated PEs.
func peResources(p *device.Platform, d Design) sched.Resources {
	dspPerCU := p.DSPTotal / maxInt(1, d.CU)
	// A DSP-backed core costs ≈3–4 slices; each PE can sustain a bounded
	// number of concurrent DSP issues.
	dspSlots := dspPerCU / (4 * maxInt(1, d.PE))
	if dspSlots > 16 {
		dspSlots = 16
	}
	return sched.Resources{
		LocalRead:  maxInt(1, p.LocalReadPorts()),
		LocalWrite: maxInt(1, p.LocalWritePorts()),
		Global:     2,
		DSPSlots:   maxInt(1, dspSlots),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Ablations disable individual model components for the sensitivity
// studies of DESIGN.md (§5): each switch removes one design choice the
// full model makes.
type Ablations struct {
	// SingleMemLatency replaces the eight-pattern memory model (Eq. 9)
	// with one flat average latency per access.
	SingleMemLatency bool
	// NoCoalescing prices every raw access instead of coalesced bursts.
	NoCoalescing bool
	// NoSchedOverhead drops ΔL_schedule (Eq. 7–8 reduce to perfect CUs).
	NoSchedOverhead bool
	// IIFromMII skips the SMS refinement and uses MII directly.
	IIFromMII bool
}

// Predict evaluates the full analytical model for one design point.
func (a *Analysis) Predict(d Design) *Estimate {
	return a.PredictWith(d, Ablations{})
}

// PredictWith evaluates the model with selected components disabled.
func (a *Analysis) PredictWith(d Design, ab Ablations) *Estimate {
	e := &Estimate{Design: d, Mode: EffectiveMode(a.F, d)}
	scfg := &sched.Config{Table: a.Table, Res: peResources(a.Platform, d)}

	// Computation model: CDFG depth + work-item pipeline schedule.
	g := cdfg.Build(a.F, a.Freq, scfg)
	if d.WIPipeline {
		r := sched.SMS(a.F, g.Freq, g.BlockOffsets, scfg)
		e.IIComp, e.Depth = r.II, r.Depth
		e.RecMII, e.ResMII = r.RecMII, r.ResMII
		if ab.IIFromMII {
			e.IIComp = r.MII
		}
	} else {
		// Without work-item pipelining the PE is re-issued per work-item.
		depth := sched.SerialDepth(a.F, g.Freq, scfg)
		e.IIComp, e.Depth = depth, depth
	}

	// Eq. 6 — effective PE parallelism: the P replicas share the CU's
	// local-memory ports and DSP budget. (The printed equation's
	// ⌈Port/(N·P)⌉ terms degenerate to 1 for any realistic P; we
	// implement the evident intent Port/N capped by P.)
	tot := sched.Totals(a.F, a.Freq, scfg)
	e.NPE = d.PE
	if tot.LocalReads >= 1 {
		e.NPE = minInt(e.NPE, maxInt(1, int(float64(scfg.Res.LocalRead)/tot.LocalReads)))
	}
	if tot.LocalWrites >= 1 {
		e.NPE = minInt(e.NPE, maxInt(1, int(float64(scfg.Res.LocalWrite)/tot.LocalWrites)))
	}
	if tot.DSPOps >= 1 {
		dspPerCU := a.Platform.DSPTotal / maxInt(1, d.CU)
		cores := float64(dspPerCU) / (tot.DSPOps * 4)
		e.NPE = minInt(e.NPE, maxInt(1, int(cores)))
	}

	// Eq. 5 — compute-unit latency.
	nwg := float64(d.WGSize)
	ii := float64(e.IIComp)
	depth := float64(e.Depth)
	waves := math.Ceil((nwg - float64(e.NPE)) / float64(e.NPE))
	if waves < 0 {
		waves = 0
	}
	e.LCompCU = ii*waves + depth

	// Eq. 8 — effective CU parallelism from scheduling overhead.
	dls := float64(a.Platform.WGSchedOverhead)
	if ab.NoSchedOverhead {
		dls = 0
	}
	e.NCU = d.CU
	if dls > 0 {
		if v := int(math.Ceil(e.LCompCU / dls)); v < e.NCU {
			e.NCU = v
		}
	}
	// No more CUs can be busy than there are work-groups to run.
	if g := int(math.Ceil(float64(a.NWI) / nwg)); g < e.NCU {
		e.NCU = g
	}
	if e.NCU < 1 {
		e.NCU = 1
	}

	// Eq. 7 — kernel computation latency.
	batches := math.Ceil(float64(a.NWI) / (nwg * float64(e.NCU)))
	e.LCompKernel = e.LCompCU*batches + float64(d.CU)*dls

	// Eq. 9 — per-work-item global memory latency.
	e.LMemWI = trace.MemLatencyWI(a.Mem, a.PatLat)
	if ab.SingleMemLatency {
		var flat float64
		for _, v := range a.PatLat {
			flat += v
		}
		flat /= float64(len(a.PatLat))
		e.LMemWI = a.Mem.BurstsPerWI * flat
	}
	if ab.NoCoalescing && a.Mem.BurstsPerWI > 0 {
		e.LMemWI *= a.Mem.RawPerWI / a.Mem.BurstsPerWI
	}

	switch e.Mode {
	case ModeBarrier:
		// Eq. 10 — all global transfers serialize through the single
		// DRAM channel and computation follows per work-group. With one
		// CU this is exactly L_mem^wi·N_wi + L_comp^kernel; with several,
		// a CU's computation overlaps the other CUs' serialized
		// transfers, hiding up to (1−1/N_CU) of the smaller term.
		memT := e.LMemWI * float64(a.NWI)
		overlap := (1 - 1/float64(e.NCU)) * math.Min(e.LCompKernel, memT)
		e.Cycles = memT + e.LCompKernel - overlap
	case ModePipeline:
		// Eq. 11–12 — memory pipelined against compute. The single
		// in-order memory channel is shared by the N_PE pipelines and
		// N_CU units, so the per-wave initiation interval is bounded by
		// the channel occupancy N_PE·N_CU·L_mem^wi; with N_PE = N_CU = 1
		// this is exactly II_wi = max(L_mem^wi, II_comp^wi) of Eq. 12.
		iiWI := math.Max(ii, e.LMemWI*float64(e.NPE)*float64(e.NCU))
		e.Cycles = (iiWI*waves + depth) * batches
		// The in-order channel must still carry every work-item's
		// transfers even when the PE array swallows a whole work-group
		// in one wave (waves = 0): Eq. 12's max() applied at full scale.
		if floor := e.LMemWI * float64(a.NWI); e.Cycles < floor {
			e.Cycles = floor
		}
	}
	// The serial work-group dispatcher bounds throughput from below in
	// either mode (the mechanism behind Eq. 8): no launch can finish
	// faster than ΔL_schedule per work-group.
	groups := math.Ceil(float64(a.NWI) / nwg)
	if floor := dls * groups; e.Cycles < floor {
		e.Cycles = floor
	}
	e.Seconds = e.Cycles / (a.Platform.ClockMHz * 1e6)
	return e
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
