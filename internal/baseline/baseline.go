// Package baseline implements the comparison estimators of §4:
//
//   - SDAccel: the vendor HLS cycle estimate, reproduced with the three
//     error sources the paper identifies (§4.2): (1) underestimated
//     memory access latency (a fixed optimistic per-access cost instead
//     of the eight-pattern model), (2) conservative estimation of designs
//     with complex control dependency (all branches serialize), and
//     (3) ignorance of the work-group scheduling overhead of multiple
//     CUs. It also fails to return an estimate for ~40 % of design
//     points (complex parallelism/memory configurations), as observed in
//     the paper's experiments.
//
//   - Coarse: the coarse-grained model of Wang et al. [16] used by the
//     heuristic search comparison — it additionally ignores pipelining
//     (treats II as 1) and memory patterns entirely.
package baseline

import (
	"errors"
	"math"

	"repro/internal/cdfg"
	"repro/internal/device"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/sched"
)

// ErrUnsupported marks design points the vendor estimator cannot handle.
var ErrUnsupported = errors.New("baseline: estimation not available for this design")

// SDAccel produces the HLS-style cycle estimate for a design point, or
// ErrUnsupported for configurations the tool fails on.
func SDAccel(a *model.Analysis, d model.Design) (float64, error) {
	if unsupported(a, d) {
		return 0, ErrUnsupported
	}
	scfg := &sched.Config{Table: a.Table, Res: sdaccelResources(a.Platform)}

	// Error source (2): conservative control handling — every block
	// contributes its full latency in sequence; exclusive branches are
	// summed rather than maxed, and unknown trip counts are guessed
	// high (the tool has no dynamic profile).
	freq := conservativeFreq(a)
	depth := 0.0
	for _, b := range a.F.Blocks {
		w := freq[b]
		st := sched.ScheduleBlock(b, scfg)
		depth += w * float64(st.Length)
	}
	if depth < 1 {
		depth = 1
	}

	ii := depth
	if d.WIPipeline {
		mii, _, _ := sched.MII(a.F, freq, scfg)
		ii = float64(mii)
	}

	nwg := float64(d.WGSize)
	waves := math.Ceil((nwg - float64(d.PE)) / float64(d.PE))
	if waves < 0 {
		waves = 0
	}
	lcu := ii*waves + depth

	// Error source (3): no work-group scheduling overhead, CUs assumed
	// perfectly parallel.
	batches := math.Ceil(float64(a.NWI) / (nwg * float64(d.CU)))

	// Error source (1): fixed optimistic memory latency — every access
	// is priced as a row-buffer read hit, ignoring patterns, coalescing
	// state and channel contention.
	hit := float64(a.Platform.DRAM.TCL + a.Platform.DRAM.TBus)
	memPerWI := a.Mem.BurstsPerWI * hit * 0.5

	switch model.EffectiveMode(a.F, d) {
	case model.ModeBarrier:
		return memPerWI*float64(a.NWI)/float64(d.CU) + lcu*batches, nil
	default:
		// Assumes memory fully hidden behind compute.
		return lcu * batches, nil
	}
}

// unsupported reproduces the ~42 % failure rate of §4.2: the tool rejects
// or times out on complex parallelism and memory configurations.
func unsupported(a *model.Analysis, d model.Design) bool {
	// Extreme PE replication: port binding fails.
	if d.PE >= 16 {
		return true
	}
	// High PE replication with local memory: banking fails.
	if d.PE >= 8 && len(a.F.LocalAllocas()) > 0 {
		return true
	}
	// Many CUs in pipeline mode: interconnect generation unsupported.
	if d.CU >= 4 && model.EffectiveMode(a.F, d) == model.ModePipeline {
		return true
	}
	// Replicated pipelines over data-dependent inner loops: schedule
	// exploration does not converge within the time limit.
	if d.WIPipeline && d.PE >= 8 {
		for _, l := range a.F.Loops {
			if l.StaticTrip < 0 {
				return true
			}
		}
	}
	// Atomics with replication: unsupported memory system.
	if d.PE > 1 || d.CU > 2 {
		for _, b := range a.F.Blocks {
			for _, in := range b.Instrs {
				if device.Classify(in) == device.ClassAtomic {
					return true
				}
			}
		}
	}
	return false
}

// conservativeFreq builds block frequencies without dynamic profiling:
// static trips where known, a fixed pessimistic guess otherwise, and a
// crude static 1/2-per-branch probability in place of measured ones.
func conservativeFreq(a *model.Analysis) map[*ir.Block]float64 {
	// EnsureLoops (not BuildCFG) keeps this read-only on the shared
	// function: concurrent design-point workers all estimate against the
	// same Analysis.
	a.F.EnsureLoops()
	freq := cdfg.EffectiveFreq(a.F, 12)
	idom := a.F.Dominators()
	for _, b := range a.F.Blocks {
		depth := 0
		for cur := idom[b]; cur != nil && cur != idom[cur]; cur = idom[cur] {
			if t := cur.Term(); t != nil && t.Op == ir.OpCondBr && a.F.LoopOf(cur) == nil {
				depth++
			}
			if depth >= 3 {
				break
			}
		}
		freq[b] *= 1 / float64(int(1)<<depth)
	}
	return freq
}

func sdaccelResources(p *device.Platform) sched.Resources {
	return sched.Resources{
		LocalRead:  p.LocalReadPorts(),
		LocalWrite: p.LocalWritePorts(),
		Global:     2,
		DSPSlots:   8,
	}
}
