package baseline_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/model"
)

func analyzeKernel(t *testing.T, benchName, kernel string, wg int64) *model.Analysis {
	t.Helper()
	k := bench.Find(benchName, kernel)
	if k == nil {
		t.Fatalf("kernel %s/%s missing", benchName, kernel)
	}
	f, err := k.Compile(wg)
	if err != nil {
		t.Fatal(err)
	}
	an, err := model.Analyze(context.Background(), f, device.Virtex7(), k.Config(wg), model.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestSDAccelEstimatesSimpleDesign(t *testing.T) {
	an := analyzeKernel(t, "nn", "nn", 64)
	d := model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModeBarrier}
	est, err := baseline.SDAccel(an, d)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Fatal("non-positive estimate")
	}
}

func TestSDAccelFailsOnComplexDesigns(t *testing.T) {
	an := analyzeKernel(t, "hotspot", "hotspot", 64)
	cases := []model.Design{
		{WGSize: 64, WIPipeline: true, PE: 16, CU: 1, Mode: model.ModeBarrier},
		{WGSize: 64, WIPipeline: true, PE: 8, CU: 1, Mode: model.ModeBarrier}, // local mem
	}
	for _, d := range cases {
		if _, err := baseline.SDAccel(an, d); !errors.Is(err, baseline.ErrUnsupported) {
			t.Errorf("%v: expected ErrUnsupported, got %v", d, err)
		}
	}
	// Pipeline mode with 4 CUs on a barrier-free kernel fails too.
	an2 := analyzeKernel(t, "nn", "nn", 64)
	d := model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 4, Mode: model.ModePipeline}
	if _, err := baseline.SDAccel(an2, d); !errors.Is(err, baseline.ErrUnsupported) {
		t.Errorf("cu4/pipeline: expected ErrUnsupported, got %v", err)
	}
}

func TestSDAccelIgnoresSchedulingOverhead(t *testing.T) {
	// Error source (3): CU counts scale estimates perfectly.
	an := analyzeKernel(t, "kmeans", "center", 64)
	d1 := model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModePipeline}
	d2 := model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 2, Mode: model.ModePipeline}
	e1, err1 := baseline.SDAccel(an, d1)
	e2, err2 := baseline.SDAccel(an, d2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// Perfect halving of the batch count: e2 ≈ e1/2.
	if e2 < e1*0.4 || e2 > e1*0.6 {
		t.Errorf("2 CUs: %v, want ≈ half of %v (no overhead modeled)", e2, e1)
	}
}

func TestCoarseIgnoresMemoryPatterns(t *testing.T) {
	// The coarse model must rank two designs that differ only in
	// communication mode identically — it cannot see memory behaviour.
	an := analyzeKernel(t, "nn", "nn", 64)
	bar := baseline.Coarse(an, model.Design{WGSize: 64, WIPipeline: true, PE: 2, CU: 1, Mode: model.ModeBarrier})
	pipe := baseline.Coarse(an, model.Design{WGSize: 64, WIPipeline: true, PE: 2, CU: 1, Mode: model.ModePipeline})
	if bar != pipe {
		t.Errorf("coarse model distinguishes modes: %v vs %v", bar, pipe)
	}
}

func TestCoarseRewardsRawParallelism(t *testing.T) {
	an := analyzeKernel(t, "nn", "nn", 64)
	small := baseline.Coarse(an, model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModePipeline})
	big := baseline.Coarse(an, model.Design{WGSize: 64, WIPipeline: true, PE: 16, CU: 4, Mode: model.ModePipeline})
	if big >= small {
		t.Errorf("coarse model does not reward parallelism: %v vs %v", big, small)
	}
}
