package baseline

import (
	"math"

	"repro/internal/cdfg"
	"repro/internal/model"
	"repro/internal/sched"
)

// Coarse is the coarse-grained performance model attributed to Wang et
// al. [16]: it prices a design by operation counts and raw parallelism,
// ignoring global-memory access patterns, pipelining (II is assumed 1 or
// the block latency with no modulo refinement), and scheduling overhead.
// The §4.3 comparison shows why exhaustive search over such a model gets
// stuck: it cannot rank designs whose difference is memory behaviour.
func Coarse(a *model.Analysis, d model.Design) float64 {
	scfg := &sched.Config{Table: a.Table, Res: sdaccelResources(a.Platform)}
	freq := cdfg.EffectiveFreq(a.F, 16)
	work := 0.0
	for _, b := range a.F.Blocks {
		work += freq[b] * float64(len(b.Instrs))
	}
	depth := float64(sched.SerialDepth(a.F, freq, scfg))
	perWI := work
	if d.WIPipeline {
		perWI = work / 8 // flat pipelining speedup, no II modelling
	}
	par := float64(d.PE * d.CU)
	cycles := perWI*float64(a.NWI)/par + depth
	// Work-group size only matters through launch rounding.
	batches := math.Ceil(float64(a.NWI) / (float64(d.WGSize) * float64(d.CU)))
	return cycles + batches
}
