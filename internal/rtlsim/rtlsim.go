// Package rtlsim is the cycle-level ground-truth simulator standing in
// for the paper's "System Run" (the kernel synthesized by SDAccel and
// measured on the Virtex-7 board, §4.1). It simulates the OpenCL-on-FPGA
// microarchitecture mechanistically:
//
//   - every IR operation gets the concrete implementation variant the
//     synthesis tool would have picked (not the profiled average the
//     analytical model sees);
//   - work-groups dispatch round-robin onto compute units with a jittered
//     scheduling overhead;
//   - every coalesced global-memory burst is replayed through the DRAM
//     bank/row-buffer timing simulator at its actual issue time, so bank
//     conflicts and pattern sequences are exact rather than averaged.
//
// These are precisely the effects §4.2 lists as FlexCL's error sources,
// so model-vs-simulator errors arise for the same reasons as on silicon.
package rtlsim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cdfg"
	"repro/internal/device"
	"repro/internal/dram"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Result is one simulated execution.
type Result struct {
	Design model.Design
	Mode   model.CommMode
	Cycles float64
	// Breakdown.
	IISim     int
	DepthSim  int
	NPE       int
	MemBursts int64
	Groups    int64
}

// Options tunes the simulation.
type Options struct {
	// MaxGroups caps the number of simulated work-groups; the remainder
	// is extrapolated from the simulated mean (0 = simulate all). The
	// sample is spread evenly across the launch rather than taken from
	// its start, so kernels whose leading groups are atypical (boundary
	// tiles, early-exit rows) extrapolate without bias.
	MaxGroups int
	// Ctx, when non-nil, cancels the simulation between work-groups
	// (long launches abort with the context's error).
	Ctx context.Context
}

// Simulate runs the kernel at one design point and returns its measured
// cycle count. The interp buffers are mutated (the run is functional).
// The function itself is only read, so one compiled kernel may be shared
// by concurrent simulations (each with its own Config).
func Simulate(f *ir.Func, p *device.Platform, cfg *interp.Config, d model.Design, opts Options) (*Result, error) {
	f.EnsureLoops()
	nd := cfg.Range.Normalize()
	wgSize := nd.WorkGroupSize()
	totalGroups := nd.TotalGroups()
	simGroups := totalGroups
	if opts.MaxGroups > 0 && int64(opts.MaxGroups) < simGroups {
		simGroups = int64(opts.MaxGroups)
	}

	// Functional execution with full tracing of the simulated groups,
	// sampled across the whole launch (a prefix sample biases the
	// extrapolation whenever work varies with the group index).
	prof, err := interp.ProfileKernelSpread(f, cfg, int(simGroups))
	if err != nil {
		return nil, fmt.Errorf("rtlsim: %s: %w", f.Name, err)
	}

	mode := model.EffectiveMode(f, d)
	r := &Result{Design: d, Mode: mode, Groups: totalGroups}

	// Concrete per-op implementation variants: the hash mixes kernel,
	// design point and instruction identity, so different designs of the
	// same kernel synthesize slightly differently (as on the real tool).
	seed := device.HashString(f.Name) ^ device.HashString(d.String())
	variant := func(in *ir.Instr) int {
		cl := device.Classify(in)
		return p.VariantFor(cl, device.Mix64(seed^uint64(in.ID)*0x9e37))
	}
	scfg := &sched.Config{
		Table:   device.Profile(p, 256),
		Variant: variant,
		Res:     peResources(p, d),
	}

	// Hardware schedule with exact latencies.
	g := cdfg.Build(f, prof.BlockCounts, scfg)
	var iiSim, depthSim int
	if d.WIPipeline {
		sm := sched.SMS(f, g.Freq, g.BlockOffsets, scfg)
		iiSim, depthSim = sm.II, sm.Depth
	} else {
		depthSim = sched.SerialDepth(f, g.Freq, scfg)
		iiSim = depthSim
	}
	r.IISim, r.DepthSim = iiSim, depthSim

	// Effective PE parallelism under shared CU resources.
	tot := sched.Totals(f, prof.BlockCounts, scfg)
	nPE := d.PE
	if tot.LocalReads >= 1 {
		nPE = minInt(nPE, maxInt(1, int(float64(scfg.Res.LocalRead)/tot.LocalReads)))
	}
	if tot.LocalWrites >= 1 {
		nPE = minInt(nPE, maxInt(1, int(float64(scfg.Res.LocalWrite)/tot.LocalWrites)))
	}
	if tot.DSPOps >= 1 {
		dspPerCU := p.DSPTotal / maxInt(1, d.CU)
		nPE = minInt(nPE, maxInt(1, int(float64(dspPerCU)/(tot.DSPOps*4))))
	}
	r.NPE = nPE

	// Coalesce each work-group's accesses in pipeline issue order.
	layout := trace.NewLayout(f, trace.BufferCounts(f, cfg), p.DRAM)
	unit := p.MemAccessUnitBits / 8
	wgBursts := trace.WGBursts(prof.Traces, wgSize, layout, unit)
	for _, bs := range wgBursts {
		r.MemBursts += int64(len(bs))
	}

	mem := dram.NewSim(p.DRAM)
	cuFree := make([]int64, maxInt(1, d.CU))
	var lastDone int64

	// Work-groups are dispatched by a serial scheduler that needs
	// ΔL_schedule (±jitter) per group — the mechanism behind the
	// effective-CU-parallelism bound of Eq. 8.
	var dispatch int64
	for wg := int64(0); wg < simGroups && wg < int64(len(wgBursts)); wg++ {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return nil, fmt.Errorf("rtlsim: %s: %w", f.Name, opts.Ctx.Err())
		}
		cu := int(wg % int64(d.CU))
		jit := int64(device.Mix64(seed^uint64(wg))%17) - 8
		dispatch += int64(p.WGSchedOverhead) + jit
		start := dispatch
		if cuFree[cu] > start {
			start = cuFree[cu]
		}

		nwi := wgSize
		if (wg+1)*wgSize > int64(len(prof.Traces)) {
			nwi = int64(len(prof.Traces)) - wg*wgSize
		}
		var done int64
		switch mode {
		case model.ModeBarrier:
			done = simulateBarrierWG(mem, wgBursts[wg], nwi, start, iiSim, depthSim, nPE)
		default:
			done = simulatePipelineWG(mem, wgBursts[wg], nwi, start, iiSim, depthSim, nPE)
		}
		cuFree[cu] = done
		if done > lastDone {
			lastDone = done
		}
	}

	cycles := float64(lastDone)
	if simGroups < totalGroups && simGroups > 0 {
		// Extrapolate steady-state throughput to the full launch.
		cycles = cycles * float64(totalGroups) / float64(simGroups)
	}
	r.Cycles = cycles
	return r, nil
}

// simulateBarrierWG models a barrier-mode work-group: the group's global
// transfers drain through the in-order DRAM channel, separated from
// computation by the barrier, then the compute pipeline runs.
func simulateBarrierWG(mem *dram.Sim, bursts []trace.Burst, nwi, start int64, ii, depth, nPE int) int64 {
	now := start
	for _, b := range bursts {
		done, _ := mem.AccessAt(now, b.Addr, b.Write)
		now = done
	}
	return now + int64(ii)*computeWaves(nwi, nPE) + int64(depth)
}

// simulatePipelineWG models a pipeline-mode work-group: work-items enter
// the PE array every II cycles (nPE at a time) while the group's burst
// stream drains through the memory channel concurrently; the group
// completes when both the compute pipeline and the transfers finish.
func simulatePipelineWG(mem *dram.Sim, bursts []trace.Burst, nwi, start int64, ii, depth, nPE int) int64 {
	now := start
	for _, b := range bursts {
		done, _ := mem.AccessAt(now, b.Addr, b.Write)
		now = done
	}
	memEnd := now
	computeEnd := start + int64(ii)*computeWaves(nwi, nPE) + int64(depth)
	if memEnd > computeEnd {
		return memEnd
	}
	return computeEnd
}

// computeWaves returns ⌈(nwi − nPE)/nPE⌉ clamped at 0 (Eq. 5's wave
// count).
func computeWaves(nwi int64, nPE int) int64 {
	p := int64(maxInt(1, nPE))
	w := (nwi - p + p - 1) / p
	if w < 0 {
		return 0
	}
	return w
}

// peResources mirrors the model's resource derivation (the hardware is
// the same; only observed latencies differ).
func peResources(p *device.Platform, d model.Design) sched.Resources {
	dspPerCU := p.DSPTotal / maxInt(1, d.CU)
	dspSlots := dspPerCU / (4 * maxInt(1, d.PE))
	if dspSlots > 16 {
		dspSlots = 16
	}
	return sched.Resources{
		LocalRead:  maxInt(1, p.LocalReadPorts()),
		LocalWrite: maxInt(1, p.LocalWritePorts()),
		Global:     2,
		DSPSlots:   maxInt(1, dspSlots),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Seconds converts simulated cycles to wall time on the platform.
func Seconds(cycles float64, p *device.Platform) float64 {
	return cycles / (p.ClockMHz * 1e6)
}

// ErrorVs returns the relative error |est−actual|/actual in percent.
func ErrorVs(est, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	return math.Abs(est-actual) / actual * 100
}
