package rtlsim_test

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/rtlsim"
)

func simulate(t *testing.T, benchName, kernel string, d model.Design, maxGroups int) *rtlsim.Result {
	t.Helper()
	k := bench.Find(benchName, kernel)
	if k == nil {
		t.Fatalf("kernel %s/%s missing", benchName, kernel)
	}
	f, err := k.Compile(d.WGSize)
	if err != nil {
		t.Fatal(err)
	}
	r, err := rtlsim.Simulate(f, device.Virtex7(), k.Config(d.WGSize), d, rtlsim.Options{MaxGroups: maxGroups})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDeterministic(t *testing.T) {
	d := model.Design{WGSize: 64, WIPipeline: true, PE: 2, CU: 2, Mode: model.ModePipeline}
	a := simulate(t, "nn", "nn", d, 8)
	b := simulate(t, "nn", "nn", d, 8)
	if a.Cycles != b.Cycles {
		t.Fatalf("nondeterministic simulation: %v vs %v", a.Cycles, b.Cycles)
	}
}

func TestPipeliningFasterThanSerial(t *testing.T) {
	serial := simulate(t, "nn", "nn",
		model.Design{WGSize: 64, PE: 1, CU: 1, Mode: model.ModeBarrier}, 8)
	piped := simulate(t, "nn", "nn",
		model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModeBarrier}, 8)
	if piped.Cycles >= serial.Cycles {
		t.Errorf("pipelined (%v) not faster than serial (%v)", piped.Cycles, serial.Cycles)
	}
}

func TestPipelineModeBeatsBarrierForStreaming(t *testing.T) {
	// nn is a pure streaming kernel; overlapping transfers with compute
	// must help (§3.5).
	bar := simulate(t, "nn", "nn",
		model.Design{WGSize: 128, WIPipeline: true, PE: 2, CU: 2, Mode: model.ModeBarrier}, 16)
	pipe := simulate(t, "nn", "nn",
		model.Design{WGSize: 128, WIPipeline: true, PE: 2, CU: 2, Mode: model.ModePipeline}, 16)
	if pipe.Cycles > bar.Cycles {
		t.Errorf("pipeline mode (%v) slower than barrier mode (%v)", pipe.Cycles, bar.Cycles)
	}
}

func TestBarrierKernelUsesBarrierMode(t *testing.T) {
	r := simulate(t, "hotspot", "hotspot",
		model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModePipeline}, 4)
	if r.Mode != model.ModeBarrier {
		t.Errorf("hotspot simulated in %v mode, want barrier", r.Mode)
	}
}

func TestVariantLatenciesDifferAcrossDesigns(t *testing.T) {
	// Different design points hash to different op-latency variants, so
	// the simulated II/depth may differ — the §4.2 error source.
	a := simulate(t, "srad", "srad",
		model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModeBarrier}, 4)
	b := simulate(t, "srad", "srad",
		model.Design{WGSize: 64, WIPipeline: true, PE: 2, CU: 2, Mode: model.ModeBarrier}, 4)
	if a.DepthSim == b.DepthSim && a.Cycles == b.Cycles {
		t.Error("designs indistinguishable; variant selection inactive")
	}
}

func TestExtrapolationScales(t *testing.T) {
	d := model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModePipeline}
	capped := simulate(t, "nn", "nn", d, 8)
	full := simulate(t, "nn", "nn", d, 0)
	// nn has 64 groups; capping at 8 and extrapolating should land within
	// 25 % of the full simulation.
	ratio := capped.Cycles / full.Cycles
	if ratio < 0.75 || ratio > 1.25 {
		t.Errorf("extrapolation off: capped %v vs full %v (ratio %.2f)",
			capped.Cycles, full.Cycles, ratio)
	}
}

func TestMoreCUsHelpComputeBoundKernel(t *testing.T) {
	// kmeans/center is compute-heavy (5 clusters × 8 features per WI).
	one := simulate(t, "kmeans", "center",
		model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModePipeline}, 16)
	four := simulate(t, "kmeans", "center",
		model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 4, Mode: model.ModePipeline}, 16)
	if four.Cycles >= one.Cycles {
		t.Errorf("4 CUs (%v) not faster than 1 CU (%v) on compute-bound kernel",
			four.Cycles, one.Cycles)
	}
}

func TestErrorVs(t *testing.T) {
	if got := rtlsim.ErrorVs(110, 100); got != 10 {
		t.Errorf("ErrorVs(110,100) = %v", got)
	}
	if got := rtlsim.ErrorVs(90, 100); got != 10 {
		t.Errorf("ErrorVs(90,100) = %v", got)
	}
	if got := rtlsim.ErrorVs(5, 0); got != 0 {
		t.Errorf("ErrorVs(_,0) = %v", got)
	}
}

func TestSecondsConversion(t *testing.T) {
	p := device.Virtex7()
	if got := rtlsim.Seconds(200e6, p); got != 1.0 {
		t.Errorf("200M cycles at 200MHz = %v s, want 1", got)
	}
}

func TestModelTracksSimulatorAcrossDesigns(t *testing.T) {
	// End-to-end sanity: over a small design sample of a regular kernel,
	// the analytical model must stay within 30 % of the simulator.
	k := bench.Find("kmeans", "swap")
	if k == nil {
		t.Fatal("kmeans/swap missing")
	}
	p := device.Virtex7()
	for _, d := range []model.Design{
		{WGSize: 64, WIPipeline: false, PE: 1, CU: 1, Mode: model.ModeBarrier},
		{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModeBarrier},
		{WGSize: 64, WIPipeline: true, PE: 4, CU: 2, Mode: model.ModePipeline},
		{WGSize: 256, WIPipeline: true, PE: 8, CU: 4, Mode: model.ModePipeline},
	} {
		f, err := k.Compile(d.WGSize)
		if err != nil {
			t.Fatal(err)
		}
		an, err := model.Analyze(context.Background(), f, p, k.Config(d.WGSize), model.AnalysisOptions{})
		if err != nil {
			t.Fatal(err)
		}
		est := an.Predict(d)
		f2, _ := k.Compile(d.WGSize)
		sim, err := rtlsim.Simulate(f2, p, k.Config(d.WGSize), d, rtlsim.Options{MaxGroups: 8})
		if err != nil {
			t.Fatal(err)
		}
		if e := rtlsim.ErrorVs(est.Cycles, sim.Cycles); e > 30 {
			t.Errorf("%v: model error %.1f%% (est %v, sim %v)", d, e, est.Cycles, sim.Cycles)
		}
	}
}
