// Package check is the cross-layer correctness subsystem: it
// mechanically audits the FlexCL reproduction by running five families
// of checks over the benchmark corpus and reporting every violation as
// a structured finding (see docs/CHECK.md for each invariant's paper
// grounding):
//
//   - model invariants: every prediction is positive and finite with
//     sane breakdown fields; barrier-mode estimates are monotonically
//     non-increasing as PE/CU parallelism grows, except where the model
//     attributes the slowdown to a documented contention term; ablated
//     predictions respect their provable bounds.
//   - differential checks: the analytical model stays inside a
//     per-kernel error band of the cycle-level simulator, and kernel
//     analysis (dynamic profiling) is bit-deterministic across runs.
//   - serve consistency: the HTTP service returns byte-identical cycle
//     estimates for the same design through /v1/predict and
//     /v1/explore, catching cache-aliasing drift between the
//     prediction and preparation caches.
//   - search equivalence: the guided branch-and-bound search returns
//     byte-for-byte the same best design (and Pareto frontier) as the
//     exhaustive sweep while evaluating under 10 % of the space on the
//     corpus-median kernel — the proof-of-equivalence behind trusting
//     its pruning.
//   - profile equivalence: the static-analysis profiler fast path
//     yields bitwise the same Profile as the interpreter for every
//     kernel the analyzer claims (both sampling modes, errors
//     included), the parallel interpreter is deterministic across
//     worker counts, and the statically analyzable fraction of
//     PolyBench stays above its floor — the proof behind letting the
//     dispatcher skip interpretation.
//
// The whole value of an analytical model is that its numbers can be
// trusted in place of synthesis, so silent correctness drift is the
// worst failure mode this codebase has; check exists to make such
// drift loud. cmd/flexcl-check wires it into CI.
package check

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/report"
)

// Family names.
const (
	FamilyInvariant    = "invariant"
	FamilyDifferential = "differential"
	FamilyServe        = "serve"
	// FamilySearch and FamilyProfile are declared in search.go and
	// profile.go with their equivalence contracts.
)

// Finding is one violated check: what was checked, where, and the
// expected-vs-got evidence.
type Finding struct {
	Family string // FamilyInvariant | FamilyDifferential | FamilyServe
	Check  string // machine-readable check name, e.g. "mono-pe"
	Kernel string // "bench/kernel"; empty for corpus-wide checks
	Design string // offending design, or "d1 -> d2" for pair checks
	// Expected and Got carry the falsified assertion.
	Expected string
	Got      string
	// Allowed marks findings matched by the allowlist (known model
	// limitations); Reason carries the allowlist justification.
	Allowed bool
	Reason  string
}

func (f Finding) String() string {
	s := fmt.Sprintf("[%s/%s] %s %s: expected %s, got %s",
		f.Family, f.Check, f.Kernel, f.Design, f.Expected, f.Got)
	if f.Allowed {
		s += " (allowed: " + f.Reason + ")"
	}
	return s
}

// Options tunes a check run.
type Options struct {
	// Platform is the device model everything is checked on
	// (nil = Virtex-7, the paper's board).
	Platform *device.Platform
	// Kernels restricts the corpus (nil = every bundled kernel).
	Kernels []*bench.Kernel
	// Families restricts the check families (nil = all three).
	Families []string
	// Smoke shrinks the run for CI: a deterministic subset of kernels,
	// one work-group size each, and fewer differential design points.
	Smoke bool
	// SimMaxGroups caps ground-truth simulation per differential point
	// (0 = 64; smoke runs use 8). Small samples are noisy referees for
	// kernels whose per-group work varies (e.g. triangular solvers), so
	// the default is deliberately generous.
	SimMaxGroups int
	// Workers shards kernels over goroutines (0 = GOMAXPROCS).
	Workers int
	// ErrorBandPct is the default differential model-vs-simulator error
	// band in percent (0 = 65). Per-kernel exceptions belong in the
	// allowlist, not here.
	ErrorBandPct float64
	// Allowlist marks known model limitations (nil = Default Allowlist;
	// explicit empty slice disables allowances).
	Allowlist []Allow
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// Cache, when non-nil, is the prep cache the model-driven families
	// share — pass a disk-backed one (dse.NewPrepCacheOpts with an
	// artifact store) so repeated audits skip the profiling cost.
	// nil uses a private in-memory cache.
	Cache *dse.PrepCache
}

func (o Options) platform() *device.Platform {
	if o.Platform != nil {
		return o.Platform
	}
	return device.Virtex7()
}

func (o Options) families() []string {
	if len(o.Families) == 0 {
		return []string{FamilyInvariant, FamilyDifferential, FamilyServe, FamilySearch, FamilyProfile}
	}
	return o.Families
}

func (o Options) simGroups() int {
	if o.SimMaxGroups > 0 {
		return o.SimMaxGroups
	}
	if o.Smoke {
		return 8
	}
	return 64
}

func (o Options) errorBand() float64 {
	if o.ErrorBandPct > 0 {
		return o.ErrorBandPct
	}
	return 65
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// kernels resolves the corpus under the smoke subsetting rule: every
// smokeStride-th kernel of the stable corpus order, so the subset stays
// deterministic and spans both suites.
func (o Options) kernels() []*bench.Kernel {
	ks := o.Kernels
	if ks == nil {
		ks = bench.All()
	}
	if !o.Smoke {
		return ks
	}
	var out []*bench.Kernel
	for i, k := range ks {
		if i%smokeStride == 0 {
			out = append(out, k)
		}
	}
	return out
}

// smokeStride picks every 6th kernel for -smoke: 10 of the 60 bundled
// kernels, spanning Rodinia and PolyBench.
const smokeStride = 6

// Report is the outcome of one check run.
type Report struct {
	// Findings holds every violation, including allowed ones.
	Findings []Finding
	// Checks counts the individual assertions evaluated.
	Checks int
	// Attributed counts barrier-mode scaling pairs whose slowdown the
	// model attributes to a documented contention term (skipped, see
	// docs/CHECK.md).
	Attributed int
	// Kernels is the number of kernels audited.
	Kernels  int
	Families []string
	Duration time.Duration
}

// Violations returns the findings not excused by the allowlist.
func (r *Report) Violations() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Allowed {
			out = append(out, f)
		}
	}
	return out
}

// Allowed returns the findings excused by the allowlist.
func (r *Report) Allowed() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Allowed {
			out = append(out, f)
		}
	}
	return out
}

// Table renders the findings in the repository's report format
// (FamilyInvariant first, then by kernel, check, design).
func (r *Report) Table() *report.Table {
	t := report.New(
		fmt.Sprintf("flexcl-check findings (%d checks, %d kernels, %v)",
			r.Checks, r.Kernels, r.Duration.Round(time.Millisecond)),
		"Family", "Check", "Kernel", "Design", "Expected", "Got", "Allowed")
	fs := append([]Finding(nil), r.Findings...)
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Family != fs[j].Family {
			return fs[i].Family < fs[j].Family
		}
		if fs[i].Kernel != fs[j].Kernel {
			return fs[i].Kernel < fs[j].Kernel
		}
		if fs[i].Check != fs[j].Check {
			return fs[i].Check < fs[j].Check
		}
		return fs[i].Design < fs[j].Design
	})
	for _, f := range fs {
		allowed := ""
		if f.Allowed {
			allowed = "yes: " + f.Reason
		}
		t.Add(f.Family, f.Check, f.Kernel, f.Design, f.Expected, f.Got, allowed)
	}
	return t
}

// Run executes the configured check families over the corpus. The
// returned report holds every finding; a run "passes" when
// Report.Violations() is empty. The error is reserved for harness
// failures (compilation, analysis, the serve fixture) — never for
// findings.
func Run(ctx context.Context, opts Options) (*Report, error) {
	t0 := time.Now()
	allow := opts.Allowlist
	if allow == nil {
		allow = DefaultAllowlist()
	}
	kernels := opts.kernels()
	rep := &Report{Kernels: len(kernels), Families: opts.families()}

	families := map[string]bool{}
	for _, f := range opts.families() {
		families[f] = true
	}
	for f := range families {
		switch f {
		case FamilyInvariant, FamilyDifferential, FamilyServe, FamilySearch, FamilyProfile:
		default:
			return nil, fmt.Errorf("check: unknown family %q", f)
		}
	}

	// The model-driven families share one prep cache, so each
	// (kernel, WG) is compiled and analyzed exactly once per run.
	cache := opts.Cache
	if cache == nil {
		cache = dse.NewPrepCache()
	}

	// Invariant + differential families shard per kernel.
	if families[FamilyInvariant] || families[FamilyDifferential] {
		var mu sync.Mutex
		var firstErr error
		perKernel(ctx, opts.Workers, kernels, func(k *bench.Kernel) {
			res, err := auditKernel(ctx, k, cache, opts, families)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			rep.Findings = append(rep.Findings, res.findings...)
			rep.Checks += res.checks
			rep.Attributed += res.attributed
			opts.logf("checked %-28s %5d assertions, %d findings",
				k.ID(), res.checks, len(res.findings))
		})
		if firstErr != nil {
			return nil, firstErr
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	if families[FamilySearch] {
		fs, checks, err := SearchFindings(ctx, kernels, cache, opts)
		if err != nil {
			return nil, err
		}
		rep.Findings = append(rep.Findings, fs...)
		rep.Checks += checks
		opts.logf("search equivalence: %d assertions, %d findings", checks, len(fs))
	}

	if families[FamilyProfile] {
		fs, checks, err := ProfileFindings(ctx, kernels, opts)
		if err != nil {
			return nil, err
		}
		rep.Findings = append(rep.Findings, fs...)
		rep.Checks += checks
		opts.logf("profile equivalence: %d assertions, %d findings", checks, len(fs))
	}

	if families[FamilyServe] {
		serveKernels := kernels
		if opts.Smoke && len(serveKernels) > 2 {
			serveKernels = serveKernels[:2]
		}
		fs, checks, err := ServeConsistency(ctx, serveKernels, opts)
		if err != nil {
			return nil, err
		}
		rep.Findings = append(rep.Findings, fs...)
		rep.Checks += checks
		opts.logf("serve consistency: %d assertions, %d findings", checks, len(fs))
	}

	applyAllowlist(rep.Findings, allow)
	rep.Duration = time.Since(t0)
	return rep, nil
}

// perKernel fans kernels over min(workers, n) goroutines.
func perKernel(ctx context.Context, workers int, ks []*bench.Kernel, fn func(*bench.Kernel)) {
	if workers <= 0 {
		workers = 4
	}
	if workers > len(ks) {
		workers = len(ks)
	}
	if workers <= 1 {
		for _, k := range ks {
			if ctx.Err() != nil {
				return
			}
			fn(k)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan *bench.Kernel)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range next {
				fn(k)
			}
		}()
	}
	for _, k := range ks {
		if ctx.Err() != nil {
			break
		}
		next <- k
	}
	close(next)
	wg.Wait()
}
