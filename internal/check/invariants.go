package check

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
)

// Predictor is the model surface the invariant checks consume.
// *model.Analysis satisfies it; tests substitute deliberately broken
// implementations to prove each check can actually fire.
type Predictor interface {
	Predict(d model.Design) *model.Estimate
	PredictWith(d model.Design, ab model.Ablations) *model.Estimate
}

// relTol is the relative tolerance for monotonicity comparisons: two
// estimates within one part in 10⁹ are "equal", so float association
// noise never trips a check.
const relTol = 1e-9

// InvariantFindings audits one kernel's prediction surface: every
// design in designs is predicted (full model plus the ablation grid)
// and the per-point and cross-point invariants below are asserted. dls
// is the platform's ΔL_schedule (work-group scheduling overhead in
// cycles), the slack term for CU-scaling comparisons.
//
// Checks (paper grounding in docs/CHECK.md):
//
//	positive-finite  Cycles > 0 and finite; Seconds ≥ 0 and finite.
//	ii-depth         II_comp ≥ 1 and Depth ≥ 1 (Eq. 1–4: a schedule
//	                 issues at least every cycle and has ≥ 1 stage).
//	npe-ncu          1 ≤ N_PE ≤ P and 1 ≤ N_CU ≤ N (Eq. 6, 8: the
//	                 effective parallelism is capped by the requested).
//	mono-pe          With WG size, pipelining, mode and CU fixed,
//	                 growing PE must not increase cycles — unless the
//	                 estimate itself attributes the slowdown to a
//	                 documented contention term (II↑ or Depth↑ from
//	                 shared-DSP pressure, Eq. 4; or N_CU↓ from the Eq. 8
//	                 feedback). Pipeline-effective-mode points are
//	                 excluded: Eq. 11's channel occupancy N_PE·N_CU·L_mem
//	                 makes them legitimately non-monotone.
//	mono-cu          Same for CU scaling with PE fixed, with dls·ΔCU of
//	                 slack (Eq. 7 charges N·ΔL_schedule up front) and
//	                 N_PE↓ as the attributed term (per-CU DSP budget
//	                 halves, Eq. 6).
//	ablate-finite-*  Every single-component ablation stays positive and
//	                 finite.
//	ablate-floor-*   An ablated estimate can never beat its own pipeline
//	                 depth: Cycles ≥ Depth (one wave through the PE).
//	ablate-coalesce  Pricing raw accesses instead of coalesced bursts
//	                 (NoCoalescing) cannot speed the kernel up.
//	ablate-mii       Skipping SMS refinement (IIFromMII) cannot slow it
//	                 down: II = MII ≤ II_SMS. Both are asserted with
//	                 NoSchedOverhead co-enabled, which removes the Eq. 8
//	                 N_CU feedback that would otherwise couple a lower
//	                 CU latency to a worse batch count.
func InvariantFindings(kernelID string, pr Predictor, designs []model.Design, dls float64) (findings []Finding, checks, attributed int) {
	add := func(check string, d model.Design, expected, got string) {
		findings = append(findings, Finding{
			Family:   FamilyInvariant,
			Check:    check,
			Kernel:   kernelID,
			Design:   d.String(),
			Expected: expected,
			Got:      got,
		})
	}

	ests := make(map[model.Design]*model.Estimate, len(designs))
	for _, d := range designs {
		e := pr.Predict(d)
		ests[d] = e

		checks++
		if !positiveFinite(e.Cycles) || math.IsNaN(e.Seconds) || math.IsInf(e.Seconds, 0) || e.Seconds < 0 {
			add("positive-finite", d, "0 < Cycles < +Inf, finite Seconds",
				fmt.Sprintf("cycles=%v seconds=%v", e.Cycles, e.Seconds))
		}
		checks++
		if e.IIComp < 1 || e.Depth < 1 {
			add("ii-depth", d, "IIComp >= 1 && Depth >= 1",
				fmt.Sprintf("ii=%d depth=%d", e.IIComp, e.Depth))
		}
		checks++
		if e.NPE < 1 || e.NPE > d.PE || e.NCU < 1 || e.NCU > d.CU {
			add("npe-ncu", d, fmt.Sprintf("1 <= NPE <= %d && 1 <= NCU <= %d", d.PE, d.CU),
				fmt.Sprintf("npe=%d ncu=%d", e.NPE, e.NCU))
		}

		// Single-component ablations: well-formed and above the depth
		// floor.
		for _, ab := range []struct {
			name string
			ab   model.Ablations
		}{
			{"A1-single-mem", model.Ablations{SingleMemLatency: true}},
			{"A2-no-sched", model.Ablations{NoSchedOverhead: true}},
			{"A3-ii-mii", model.Ablations{IIFromMII: true}},
			{"A4-no-coalesce", model.Ablations{NoCoalescing: true}},
		} {
			ae := pr.PredictWith(d, ab.ab)
			checks++
			if !positiveFinite(ae.Cycles) {
				add("ablate-finite-"+ab.name, d, "0 < Cycles < +Inf",
					fmt.Sprintf("cycles=%v", ae.Cycles))
			}
			checks++
			if float64(ae.Depth) > ae.Cycles*(1+relTol) {
				add("ablate-floor-"+ab.name, d, "Cycles >= Depth",
					fmt.Sprintf("cycles=%v depth=%d", ae.Cycles, ae.Depth))
			}
		}

		// Ablation order relations, with NoSchedOverhead co-enabled to
		// decouple the Eq. 8 N_CU feedback.
		a2 := pr.PredictWith(d, model.Ablations{NoSchedOverhead: true})
		a24 := pr.PredictWith(d, model.Ablations{NoSchedOverhead: true, NoCoalescing: true})
		a23 := pr.PredictWith(d, model.Ablations{NoSchedOverhead: true, IIFromMII: true})
		checks++
		if a24.Cycles < a2.Cycles*(1-relTol) {
			add("ablate-coalesce", d, "uncoalesced >= coalesced cycles",
				fmt.Sprintf("uncoalesced=%v coalesced=%v", a24.Cycles, a2.Cycles))
		}
		checks++
		if a23.Cycles > a2.Cycles*(1+relTol) {
			add("ablate-mii", d, "II=MII cycles <= II=SMS cycles",
				fmt.Sprintf("mii=%v sms=%v", a23.Cycles, a2.Cycles))
		}
	}

	mf, mc, ma := monotonicityFindings(kernelID, designs, ests, dls)
	findings = append(findings, mf...)
	checks += mc
	attributed += ma
	return findings, checks, attributed
}

func positiveFinite(v float64) bool {
	return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
}

// chainKey groups designs into scaling chains: all parameters fixed
// except the one being swept (PE chains fix cu, CU chains fix pe).
type chainKey struct {
	wg   int64
	pipe bool
	mode model.CommMode
	cu   int
	pe   int
}

// monotonicityFindings checks the mono-pe / mono-cu invariants over the
// already-predicted design grid. Chains whose endpoints run in
// effective pipeline mode are skipped entirely (Eq. 11–12); attributed
// barrier-mode slowdowns are counted, not reported.
func monotonicityFindings(kernelID string, designs []model.Design, ests map[model.Design]*model.Estimate, dls float64) (findings []Finding, checks, attributed int) {
	pair := func(check string, d1, d2 model.Design, e1, e2 *model.Estimate, slack float64) {
		findings = append(findings, Finding{
			Family: FamilyInvariant,
			Check:  check,
			Kernel: kernelID,
			Design: d1.String() + " -> " + d2.String(),
			Expected: fmt.Sprintf("cycles(next) <= %v (+%v slack)",
				e1.Cycles, slack),
			Got: fmt.Sprintf("cycles=%v (ii %d->%d depth %d->%d npe %d->%d ncu %d->%d)",
				e2.Cycles, e1.IIComp, e2.IIComp, e1.Depth, e2.Depth,
				e1.NPE, e2.NPE, e1.NCU, e2.NCU),
		})
	}

	peChains := map[chainKey][]model.Design{}
	cuChains := map[chainKey][]model.Design{}
	for _, d := range designs {
		pk := chainKey{wg: d.WGSize, pipe: d.WIPipeline, mode: d.Mode, cu: d.CU}
		ck := chainKey{wg: d.WGSize, pipe: d.WIPipeline, mode: d.Mode, pe: d.PE}
		peChains[pk] = append(peChains[pk], d)
		cuChains[ck] = append(cuChains[ck], d)
	}

	for _, ds := range peChains {
		sort.Slice(ds, func(i, j int) bool { return ds[i].PE < ds[j].PE })
		for i := 1; i < len(ds); i++ {
			e1, e2 := ests[ds[i-1]], ests[ds[i]]
			if e1 == nil || e2 == nil || e1.Mode != model.ModeBarrier || e2.Mode != model.ModeBarrier {
				continue
			}
			checks++
			if e2.Cycles > e1.Cycles*(1+relTol) {
				// Documented contention terms for PE growth: DSP-slot
				// pressure raising the schedule (Eq. 4), or the Eq. 8
				// feedback lowering N_CU (lower L_comp^CU ⇒ fewer CUs
				// are worth scheduling ⇒ more batches).
				if e2.IIComp > e1.IIComp || e2.Depth > e1.Depth || e2.NCU < e1.NCU {
					attributed++
				} else {
					pair("mono-pe", ds[i-1], ds[i], e1, e2, 0)
				}
			}
		}
	}

	for _, ds := range cuChains {
		sort.Slice(ds, func(i, j int) bool { return ds[i].CU < ds[j].CU })
		for i := 1; i < len(ds); i++ {
			e1, e2 := ests[ds[i-1]], ests[ds[i]]
			if e1 == nil || e2 == nil || e1.Mode != model.ModeBarrier || e2.Mode != model.ModeBarrier {
				continue
			}
			// Eq. 7 charges N·ΔL_schedule of fixed dispatch cost, so CU
			// growth legitimately costs dls per added CU.
			slack := dls * float64(ds[i].CU-ds[i-1].CU)
			checks++
			if e2.Cycles > e1.Cycles*(1+relTol)+slack {
				// Documented contention terms for CU growth: the per-CU
				// DSP budget shrinks (Eq. 6 lowers N_PE, Eq. 4 raises
				// the schedule).
				if e2.IIComp > e1.IIComp || e2.Depth > e1.Depth || e2.NPE < e1.NPE {
					attributed++
				} else {
					pair("mono-cu", ds[i-1], ds[i], e1, e2, slack)
				}
			}
		}
	}
	return findings, checks, attributed
}
