package check

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/dse"
	"repro/internal/model"
	"repro/internal/rtlsim"
)

// kernelResult is one kernel's share of a check run.
type kernelResult struct {
	findings   []Finding
	checks     int
	attributed int
}

// auditKernel runs the invariant and differential families for one
// kernel: every (WG size, design) point is predicted and audited, then
// a sampled subset is cross-checked against the cycle-level simulator
// and the analysis is re-run to prove profiling determinism.
func auditKernel(ctx context.Context, k *bench.Kernel, cache *dse.PrepCache, opts Options, families map[string]bool) (kernelResult, error) {
	var res kernelResult
	p := opts.platform()
	dls := float64(p.WGSchedOverhead)

	wgs := k.WGSizes()
	if len(wgs) == 0 {
		return res, fmt.Errorf("check: %s has an empty WG sweep", k.ID())
	}
	if opts.Smoke && len(wgs) > 1 {
		wgs = wgs[:1]
	}
	// Ground truth is expensive; sample the ends of the WG sweep rather
	// than the whole grid (first = smallest groups, last = largest).
	simWGs := map[int64]bool{wgs[0]: true}
	if !opts.Smoke {
		simWGs[wgs[len(wgs)-1]] = true
	}

	for _, wg := range wgs {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		an, err := cache.Analysis(k, p, wg)
		if err != nil {
			return res, err
		}
		var designs []model.Design
		for _, d := range model.DefaultSpace(wg, p.MaxPE, p.MaxCU) {
			if d.WGSize == wg {
				designs = append(designs, d)
			}
		}

		if families[FamilyInvariant] {
			fs, checks, attributed := InvariantFindings(k.ID(), an, designs, dls)
			res.findings = append(res.findings, fs...)
			res.checks += checks
			res.attributed += attributed
		}

		if families[FamilyDifferential] && simWGs[wg] {
			fs, checks, err := errorBandFindings(ctx, k, an, wg, opts)
			if err != nil {
				return res, err
			}
			res.findings = append(res.findings, fs...)
			res.checks += checks
		}
	}

	if families[FamilyDifferential] {
		f, err := determinismFinding(k, cache, wgs[0], opts)
		if err != nil {
			return res, err
		}
		res.checks++
		if f != nil {
			res.findings = append(res.findings, *f)
		}
	}
	return res, nil
}

// errorBandFindings cross-checks the analytical model against the
// cycle-level simulator on a sampled set of design points: the serial
// baseline, the deepest single-CU pipeline, and (full runs only) the
// maximally parallel point. Each point's relative error must stay
// inside the kernel's band (Options.ErrorBandPct, with allowlist
// overrides for known outliers).
func errorBandFindings(ctx context.Context, k *bench.Kernel, an *model.Analysis, wg int64, opts Options) (findings []Finding, checks int, err error) {
	p := opts.platform()
	points := []model.Design{
		{WGSize: wg, WIPipeline: false, PE: 1, CU: 1, Mode: model.ModeBarrier},
		{WGSize: wg, WIPipeline: true, PE: p.MaxPE, CU: 1, Mode: model.ModePipeline},
	}
	if !opts.Smoke {
		points = append(points,
			model.Design{WGSize: wg, WIPipeline: true, PE: p.MaxPE, CU: p.MaxCU, Mode: model.ModeBarrier})
	}
	band := opts.errorBand()
	for _, d := range points {
		est := an.Predict(d)
		sim, serr := rtlsim.Simulate(an.F, p, k.Config(wg), d,
			rtlsim.Options{MaxGroups: opts.simGroups(), Ctx: ctx})
		if serr != nil {
			return nil, checks, fmt.Errorf("check: simulating %s %v: %w", k.ID(), d, serr)
		}
		checks++
		if e := rtlsim.ErrorVs(est.Cycles, sim.Cycles); e > band {
			findings = append(findings, Finding{
				Family:   FamilyDifferential,
				Check:    "error-band",
				Kernel:   k.ID(),
				Design:   d.String(),
				Expected: fmt.Sprintf("|model-sim|/sim <= %.0f%%", band),
				Got: fmt.Sprintf("%.1f%% (model=%.0f sim=%.0f)",
					e, est.Cycles, sim.Cycles),
			})
		}
	}
	return findings, checks, nil
}

// determinismFinding re-runs the whole analysis pipeline (compile,
// dynamic profiling, trace classification) for one WG size and demands
// a bit-identical profile fingerprint: trip counts, barrier counts and
// classified memory statistics must not depend on run order, map
// iteration, or any other accidental state. The reference profile comes
// from the shared prep cache, so the comparison crosses the same code
// path the DSE and serve layers consume.
func determinismFinding(k *bench.Kernel, cache *dse.PrepCache, wg int64, opts Options) (*Finding, error) {
	p := opts.platform()
	ref, err := cache.Analysis(k, p, wg)
	if err != nil {
		return nil, err
	}
	f2, err := k.Compile(wg)
	if err != nil {
		return nil, fmt.Errorf("check: recompiling %s wg=%d: %w", k.ID(), wg, err)
	}
	// Same ProfileGroups as dse.PrepCache so the runs are comparable.
	an2, err := model.Analyze(context.Background(), f2, p, k.Config(wg), model.AnalysisOptions{ProfileGroups: 8})
	if err != nil {
		return nil, fmt.Errorf("check: re-analyzing %s wg=%d: %w", k.ID(), wg, err)
	}
	fp1, fp2 := profileFingerprint(ref), profileFingerprint(an2)
	if fp1 == fp2 {
		return nil, nil
	}
	return &Finding{
		Family:   FamilyDifferential,
		Check:    "interp-determinism",
		Kernel:   k.ID(),
		Design:   fmt.Sprintf("wg=%d", wg),
		Expected: "identical profile fingerprints across runs",
		Got:      fingerprintDiff(fp1, fp2),
	}, nil
}

// profileFingerprint renders everything the model reads from a profile
// into one canonical string. Blocks are keyed by label (pointers differ
// across compiles) and sorted, so equal profiles always render equally.
func profileFingerprint(an *model.Analysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "nwi=%d wg=%d barriers=%g\n", an.NWI, an.WGSize, an.Barriers)
	m := an.Mem
	fmt.Fprintf(&b, "mem: wi=%d bursts=%g raw=%g reads=%g writes=%g pat=%v\n",
		m.WorkItems, m.BurstsPerWI, m.RawPerWI, m.Reads, m.Writes, m.N)
	lines := make([]string, 0, len(an.Freq))
	for blk, n := range an.Freq {
		lines = append(lines, fmt.Sprintf("freq %s=%g", blk.Label(), n))
	}
	sort.Strings(lines)
	b.WriteString(strings.Join(lines, "\n"))
	return b.String()
}

// fingerprintDiff reports the first line where two fingerprints differ,
// keeping findings readable instead of dumping both profiles.
func fingerprintDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("fingerprint lengths differ: %d vs %d lines", len(al), len(bl))
}
