package check

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestProfileComparatorCleanOnConsistentAudit(t *testing.T) {
	fs, checks := profileKernelFindings(profileAudit{
		kernel: "gen/vecadd", analyzable: true,
	})
	if len(fs) != 0 {
		t.Fatalf("clean audit produced findings: %v", fs)
	}
	if checks == 0 {
		t.Fatal("no checks counted")
	}
	// A clean fallback kernel is also finding-free.
	fs, _ = profileKernelFindings(profileAudit{
		kernel: "gen/datadep", analyzable: false, reason: "address depends on written buffer",
	})
	if len(fs) != 0 {
		t.Fatalf("clean fallback audit produced findings: %v", fs)
	}
}

func TestProfileComparatorCatchesMismatches(t *testing.T) {
	cases := []struct {
		name  string
		audit profileAudit
		check string
	}{
		{
			"prefix-diff",
			profileAudit{kernel: "k", analyzable: true, prefixDiff: "BlockCounts[b2]: 3 != 4"},
			"static-equals-interp",
		},
		{
			"spread-diff",
			profileAudit{kernel: "k", analyzable: true, spreadDiff: "WorkItems: 64 != 32"},
			"static-equals-interp",
		},
		{
			"error-mismatch",
			profileAudit{kernel: "k", analyzable: true, staticErr: "interp: load out of bounds", interpErr: ""},
			"error-match",
		},
		{
			"nondeterministic-workers",
			profileAudit{kernel: "k", analyzable: false, reason: "r", workerDiff: "Traces[3][0]: differs"},
			"worker-determinism",
		},
		{
			"silent-decline",
			profileAudit{kernel: "k", analyzable: false},
			"decline-reason",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fs, _ := profileKernelFindings(c.audit)
			if len(fs) == 0 {
				t.Fatal("mismatch not detected")
			}
			var hit bool
			for _, f := range fs {
				if f.Family != FamilyProfile {
					t.Errorf("family = %q, want %q", f.Family, FamilyProfile)
				}
				if f.Check == c.check {
					hit = true
				}
			}
			if !hit {
				t.Errorf("findings %v missing check %q", fs, c.check)
			}
		})
	}
}

// TestProfileFamilyOnKernels runs the real family end to end on two
// bundled kernels and the generated fallback family: no findings.
func TestProfileFamilyOnKernels(t *testing.T) {
	var kernels []*bench.Kernel
	for _, id := range []string{"hotspot/hotspot", "2mm/mm2"} {
		k := bench.FindID(id)
		if k == nil {
			t.Fatalf("kernel %s not bundled", id)
		}
		kernels = append(kernels, k)
	}
	fs, checks, err := ProfileFindings(context.Background(), kernels, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("profile family findings on clean corpus: %v", fs)
	}
	// Two bundled + the generated corpus, several checks each, plus the
	// corpus-wide coverage check.
	want := 2 + len(bench.GeneratedCorpus())
	if checks < want {
		t.Errorf("checks = %d, want at least %d", checks, want)
	}
}

func TestProfileFamilyWiredIntoRun(t *testing.T) {
	var found bool
	for _, f := range (Options{}).families() {
		if f == FamilyProfile {
			found = true
		}
	}
	if !found {
		t.Error("profile family missing from the default family list")
	}
	// Unknown families must still be rejected by Run.
	if _, err := Run(context.Background(), Options{Families: []string{"profil"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown family") {
		t.Errorf("Run accepted a misspelled family: %v", err)
	}
}
