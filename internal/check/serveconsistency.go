package check

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/bench"
	"repro/internal/model"
	"repro/internal/serve"
)

// Wire mirrors of internal/serve's JSON. Cycle values are kept as
// json.Number so the comparison is byte-for-byte on what the service
// actually emitted — a float round-trip would mask low-bit drift, and
// low-bit drift is exactly what a cache-aliasing bug produces.
type wireDesign struct {
	WGSize     int64  `json:"wg_size"`
	WIPipeline bool   `json:"wi_pipeline"`
	PE         int    `json:"pe"`
	CU         int    `json:"cu"`
	Mode       string `json:"mode"`
}

type wirePredict struct {
	Design wireDesign  `json:"design"`
	Cycles json.Number `json:"cycles"`
	Cached bool        `json:"cached"`
}

type wirePoint struct {
	Design wireDesign  `json:"design"`
	Est    json.Number `json:"est_cycles"`
}

type wireJob struct {
	State   string `json:"state"`
	Error   string `json:"error"`
	Summary *struct {
		Points int         `json:"points"`
		Top    []wirePoint `json:"top"`
	} `json:"summary"`
}

// ServeConsistency audits the HTTP service end to end: for each kernel
// it predicts sampled designs through POST /v1/predict (twice, so the
// second answer crosses the prediction cache) and explores the full
// space through POST /v1/explore, then demands the three answers agree
// byte-for-byte on the estimated cycles:
//
//	pred-cache-stability        first predict == cached re-predict
//	predict-explore-consistency predict == the design's point in the
//	                            exploration result
//
// Both checks catch aliasing drift between dse.PredCache, the shared
// dse.PrepCache, and the exploration path (a cached estimate mutated by
// any layer shows up as a byte difference here). The server runs
// in-process on an httptest listener; no network access is needed.
func ServeConsistency(ctx context.Context, kernels []*bench.Kernel, opts Options) (findings []Finding, checks int, err error) {
	p := opts.platform()
	srv := serve.New(serve.Config{
		Workers:        2,
		RequestTimeout: 2 * time.Minute,
		ExploreTimeout: 10 * time.Minute,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		cctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if cerr := srv.Close(cctx); cerr != nil && err == nil {
			err = fmt.Errorf("check: draining serve fixture: %w", cerr)
		}
	}()
	client := ts.Client()

	for _, k := range kernels {
		if err := ctx.Err(); err != nil {
			return findings, checks, err
		}
		wgs := k.WGSizes()
		if len(wgs) == 0 {
			continue
		}
		wg := wgs[0]
		// The serial baseline plus the maximally parallel point: the two
		// ends of the space, and the designs most likely to collide in a
		// miskeyed cache.
		designs := []wireDesign{
			{WGSize: wg, WIPipeline: false, PE: 1, CU: 1, Mode: "barrier"},
			{WGSize: wg, WIPipeline: true, PE: p.MaxPE, CU: p.MaxCU, Mode: "pipeline"},
		}

		preds := make([]wirePredict, len(designs))
		for i, d := range designs {
			p1, err := postPredict(ctx, client, ts.URL, k, d)
			if err != nil {
				return findings, checks, err
			}
			p2, err := postPredict(ctx, client, ts.URL, k, d)
			if err != nil {
				return findings, checks, err
			}
			preds[i] = p1
			checks++
			if p1.Cycles != p2.Cycles {
				findings = append(findings, Finding{
					Family:   FamilyServe,
					Check:    "pred-cache-stability",
					Kernel:   k.ID(),
					Design:   designString(d),
					Expected: "re-predict returns identical bytes: " + string(p1.Cycles),
					Got:      fmt.Sprintf("%s (cached=%v)", p2.Cycles, p2.Cached),
				})
			}
		}

		top, err := explore(ctx, client, ts.URL, k)
		if err != nil {
			return findings, checks, err
		}
		for i, d := range designs {
			checks++
			pt, ok := findPoint(top, d)
			if !ok {
				findings = append(findings, Finding{
					Family:   FamilyServe,
					Check:    "predict-explore-consistency",
					Kernel:   k.ID(),
					Design:   designString(d),
					Expected: "design present in the exploration result",
					Got:      fmt.Sprintf("absent from %d returned points", len(top)),
				})
				continue
			}
			if preds[i].Cycles != pt.Est {
				findings = append(findings, Finding{
					Family:   FamilyServe,
					Check:    "predict-explore-consistency",
					Kernel:   k.ID(),
					Design:   designString(d),
					Expected: "explore est_cycles == predict cycles: " + string(preds[i].Cycles),
					Got:      string(pt.Est),
				})
			}
		}
	}
	return findings, checks, nil
}

func designString(d wireDesign) string {
	return (model.Design{
		WGSize: d.WGSize, WIPipeline: d.WIPipeline, PE: d.PE, CU: d.CU,
		Mode: parseMode(d.Mode),
	}).String()
}

func parseMode(s string) model.CommMode {
	if s == "pipeline" {
		return model.ModePipeline
	}
	return model.ModeBarrier
}

func postJSON(ctx context.Context, client *http.Client, url string, body any, out any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return resp.StatusCode, fmt.Errorf("decoding %s response (%d): %w", url, resp.StatusCode, err)
	}
	return resp.StatusCode, nil
}

func postPredict(ctx context.Context, client *http.Client, base string, k *bench.Kernel, d wireDesign) (wirePredict, error) {
	body := map[string]any{
		"bench": k.Bench, "kernel": k.Name, "platform": "virtex7",
		"design": d,
	}
	var out wirePredict
	code, err := postJSON(ctx, client, base+"/v1/predict", body, &out)
	if err != nil {
		return out, fmt.Errorf("check: predict %s %s: %w", k.ID(), designString(d), err)
	}
	if code != http.StatusOK {
		return out, fmt.Errorf("check: predict %s %s: HTTP %d", k.ID(), designString(d), code)
	}
	return out, nil
}

// explore submits a model-only exploration covering the whole space
// (top large enough to return every point) and polls the job to
// completion.
func explore(ctx context.Context, client *http.Client, base string, k *bench.Kernel) ([]wirePoint, error) {
	body := map[string]any{
		"bench": k.Bench, "kernel": k.Name, "platform": "virtex7",
		"sim": false, "top": 1 << 20,
	}
	var sub struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	code, err := postJSON(ctx, client, base+"/v1/explore", body, &sub)
	if err != nil {
		return nil, fmt.Errorf("check: explore %s: %w", k.ID(), err)
	}
	if code != http.StatusAccepted {
		return nil, fmt.Errorf("check: explore %s: HTTP %d", k.ID(), code)
	}

	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+sub.ID, nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("check: polling job %s: %w", sub.ID, err)
		}
		var jv wireJob
		derr := json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if derr != nil {
			return nil, fmt.Errorf("check: decoding job %s: %w", sub.ID, derr)
		}
		switch jv.State {
		case "done":
			if jv.Summary == nil {
				return nil, fmt.Errorf("check: job %s done without summary", sub.ID)
			}
			return jv.Summary.Top, nil
		case "failed", "canceled":
			return nil, fmt.Errorf("check: explore %s %s: %s", k.ID(), jv.State, jv.Error)
		}
	}
}

func findPoint(points []wirePoint, d wireDesign) (wirePoint, bool) {
	for _, pt := range points {
		if pt.Design == d {
			return pt, true
		}
	}
	return wirePoint{}, false
}
