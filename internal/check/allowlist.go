package check

// Allow excuses a known, documented model limitation: a finding
// matching an entry is kept in the report (it still prints) but marked
// Allowed and excluded from Report.Violations(), so flexcl-check exits
// zero. Every entry must say why the limitation is accepted; an empty
// Reason would hide a bug behind a shrug.
type Allow struct {
	// Check is the exact check name ("" matches any check).
	Check string
	// Kernel is the exact "bench/kernel" ID ("" matches any kernel).
	Kernel string
	// Reason is the documented justification, shown in the report.
	Reason string
}

func (a Allow) matches(f Finding) bool {
	if a.Check != "" && a.Check != f.Check {
		return false
	}
	if a.Kernel != "" && a.Kernel != f.Kernel {
		return false
	}
	return true
}

// applyAllowlist marks findings excused by the allowlist in place.
func applyAllowlist(fs []Finding, allow []Allow) {
	for i := range fs {
		for _, a := range allow {
			if a.matches(fs[i]) {
				fs[i].Allowed = true
				fs[i].Reason = a.Reason
				break
			}
		}
	}
}

// DefaultAllowlist is the repository's accepted-limitations register.
// An entry here is a statement that the flagged behaviour is a known
// property of the analytical model (with its grounding in docs/CHECK.md),
// not a regression; anything the checker flags that is NOT listed here
// is a bug to fix. Prefer tightening a check's formulation over adding
// an entry, and add an entry only when the deviation is understood and
// documented. The structural model properties already live in the
// checks themselves (pipeline-mode monotonicity exclusion, attributed
// contention terms, the dls·ΔCU slack), so this list stays short.
func DefaultAllowlist() []Allow {
	return []Allow{
		{
			Check:  "error-band",
			Kernel: "bfs/bfs_1",
			Reason: "data-dependent control flow: the model's prefix-profiled trip counts " +
				"(§3.2) over-estimate the average frontier work per item by ~60–90% vs " +
				"full simulation — the irregular-kernel error source §4.2 acknowledges",
		},
	}
}
