package check

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bench"
	"repro/internal/dse"
)

// FamilySearch audits the guided branch-and-bound search against
// exhaustive exploration (the proof-of-equivalence family): for every
// corpus kernel the guided search must return byte-for-byte the same
// best design as the exhaustive sweep, the Pareto mode the same
// frontier, the evaluation accounting must cover the space exactly, and
// — corpus-wide — the search must prune aggressively enough that the
// median evaluated fraction stays under searchMaxMedianRatio.
const FamilySearch = "search"

// searchMaxMedianRatio is the corpus-median bound on Evaluated/Space:
// the guided search must evaluate under 10 % of the design space on the
// median kernel, or it has degraded to a slow exhaustive sweep.
const searchMaxMedianRatio = 0.10

// searchAudit is one kernel's raw material for the comparator.
type searchAudit struct {
	kernel   string
	exhaust  *dse.Result
	guided   *dse.SearchResult
	pareto   *dse.SearchResult
	frontier []dse.Point // ParetoFrontierOf(exhaust.Points)
}

// searchKernelFindings compares one kernel's guided and Pareto searches
// against its exhaustive exploration. It is pure (no I/O, no model
// calls) so tests can feed it fabricated mismatches; the evaluation
// ratio is returned for the corpus-wide median check.
func searchKernelFindings(a searchAudit) (findings []Finding, checks int, ratio float64) {
	ex, sr, pr := a.exhaust, a.guided, a.pareto
	fail := func(check, design, expected, got string) {
		findings = append(findings, Finding{
			Family: FamilySearch, Check: check, Kernel: a.kernel,
			Design: design, Expected: expected, Got: got,
		})
	}

	// Best-design equivalence, tie-breaks and bits included.
	checks++
	exBest, exOK := ex.BestByModel()
	if exOK != sr.BestOK {
		fail("best-match", "", fmt.Sprintf("bestOK=%v", exOK), fmt.Sprintf("bestOK=%v", sr.BestOK))
	} else if exOK {
		if sr.Best.Design != exBest.Design {
			fail("best-match", sr.Best.Design.String(),
				"guided best == exhaustive best "+exBest.Design.String(),
				"different design")
		} else if sr.Best.Est != exBest.Est {
			fail("best-match", sr.Best.Design.String(),
				fmt.Sprintf("est %v (bitwise)", exBest.Est), fmt.Sprintf("est %v", sr.Best.Est))
		}
	}

	// Accounting: every design point is either evaluated or provably
	// pruned, and the space matches the exhaustive enumeration.
	checks++
	if sr.Evaluated+sr.Pruned != sr.Space || sr.Space != len(ex.Points) {
		fail("eval-accounting", "",
			fmt.Sprintf("evaluated+pruned == space == %d exhaustive points", len(ex.Points)),
			fmt.Sprintf("evaluated %d + pruned %d, space %d", sr.Evaluated, sr.Pruned, sr.Space))
	}

	// Every evaluated point's estimate must agree bitwise with the
	// exhaustive evaluation of the same design.
	byDesign := make(map[string]float64, len(ex.Points))
	for _, pt := range ex.Points {
		byDesign[pt.Design.String()] = pt.Est
	}
	checks++
	for _, pt := range sr.Points {
		est, ok := byDesign[pt.Design.String()]
		if !ok || est != pt.Est {
			fail("point-match", pt.Design.String(),
				fmt.Sprintf("est %v (bitwise, from exhaustive)", est), fmt.Sprintf("est %v", pt.Est))
		}
	}

	// Pareto frontier equivalence.
	checks++
	if len(pr.Frontier) != len(a.frontier) {
		fail("frontier-match", "",
			fmt.Sprintf("%d frontier points", len(a.frontier)),
			fmt.Sprintf("%d frontier points", len(pr.Frontier)))
	} else {
		for i := range a.frontier {
			if pr.Frontier[i].Design != a.frontier[i].Design || pr.Frontier[i].Est != a.frontier[i].Est {
				fail("frontier-match", pr.Frontier[i].Design.String(),
					fmt.Sprintf("frontier[%d] = %s (%v)", i, a.frontier[i].Design, a.frontier[i].Est),
					fmt.Sprintf("%s (%v)", pr.Frontier[i].Design, pr.Frontier[i].Est))
			}
		}
	}

	if sr.Space > 0 {
		ratio = float64(sr.Evaluated) / float64(sr.Space)
	}
	return findings, checks, ratio
}

// searchMedian returns the median of vs (0 for an empty slice).
func searchMedian(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	if n := len(sorted); n%2 == 1 {
		return sorted[n/2]
	} else {
		return (sorted[n/2-1] + sorted[n/2]) / 2
	}
}

// SearchFindings runs the search family over the corpus: per kernel a
// model-only exhaustive exploration, a guided search and a Pareto
// search (all through the shared prep cache, so analyses are reused
// across families), compared by searchKernelFindings; plus the
// corpus-wide median-evaluation-ratio bound. Smoke runs audit the
// subset of kernels but keep each kernel's full work-group sweep — the
// equivalence proof is only meaningful over the whole space.
func SearchFindings(ctx context.Context, kernels []*bench.Kernel, cache *dse.PrepCache, opts Options) ([]Finding, int, error) {
	p := opts.platform()
	var mu sync.Mutex
	var findings []Finding
	var ratios []float64
	checks := 0
	var firstErr error
	perKernel(ctx, opts.Workers, kernels, func(k *bench.Kernel) {
		// Kernels are already sharded across workers; keep each audit
		// serial inside its shard.
		ex, err := dse.Explore(ctx, k, dse.Options{
			Platform: p, SkipActual: true, SkipBaseline: true,
			Workers: 1, Cache: cache,
		})
		if err == nil {
			var sr, pr *dse.SearchResult
			sr, err = dse.Search(ctx, k, dse.SearchOptions{Platform: p, Workers: 1, Cache: cache})
			if err == nil {
				pr, err = dse.Search(ctx, k, dse.SearchOptions{Platform: p, Workers: 1, Cache: cache, Pareto: true})
			}
			if err == nil {
				fs, n, ratio := searchKernelFindings(searchAudit{
					kernel:   k.ID(),
					exhaust:  ex,
					guided:   sr,
					pareto:   pr,
					frontier: dse.ParetoFrontierOf(ex.Points),
				})
				mu.Lock()
				findings = append(findings, fs...)
				checks += n
				ratios = append(ratios, ratio)
				mu.Unlock()
				opts.logf("search %-28s space %4d evaluated %3d (%.1f%%), %d findings",
					k.ID(), sr.Space, sr.Evaluated, ratio*100, len(fs))
				return
			}
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("check search %s: %w", k.ID(), err)
		}
		mu.Unlock()
	})
	if firstErr != nil {
		return nil, 0, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}

	checks++
	if med := searchMedian(ratios); med >= searchMaxMedianRatio {
		findings = append(findings, Finding{
			Family: FamilySearch, Check: "eval-ratio",
			Expected: fmt.Sprintf("corpus-median evaluated fraction < %.0f%%", searchMaxMedianRatio*100),
			Got:      fmt.Sprintf("median %.1f%% over %d kernels", med*100, len(ratios)),
		})
	}
	return findings, checks, nil
}
