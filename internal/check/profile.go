package check

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bench"
	"repro/internal/interp"
)

// FamilyProfile proves the static-analysis profiler fast path exact:
// for every kernel the analyzer claims, the statically derived profile
// must be field-for-field identical to the interpreter's — both prefix
// and spread sampling — and the interpreter itself must be
// deterministic across worker counts, so the dispatcher can pick any
// path without changing a single downstream model estimate. Corpus-wide
// the analyzer must claim at least profileMinStaticFraction of the
// PolyBench suite, the regular workloads the fast path exists for.
const FamilyProfile = "profile"

// profileMinStaticFraction is the floor on the statically analyzable
// fraction of PolyBench: below it the fast path has regressed into
// decoration.
const profileMinStaticFraction = 0.40

// profileGroups is the sampled work-group budget of each comparison:
// matches the prep pipeline's ProfileGroups so the family audits the
// exact launches production profiles.
const profileGroups = 8

// profileAudit is one kernel's raw material for the comparator: the
// analyzer's verdict and the profile diffs, precomputed so the
// comparator stays pure and tests can feed fabricated mismatches.
type profileAudit struct {
	kernel     string
	analyzable bool
	reason     string // decline reason when !analyzable
	staticErr  string // error from the static executor ("" = none)
	interpErr  string // error from the interpreter ("" = none)
	prefixDiff string // static vs interp, prefix sampling
	spreadDiff string // static vs interp, spread sampling
	workerDiff string // interp at 1 worker vs 4 workers
}

// profileKernelFindings turns one kernel's audit into findings.
func profileKernelFindings(a profileAudit) (findings []Finding, checks int) {
	fail := func(check, expected, got string) {
		findings = append(findings, Finding{
			Family: FamilyProfile, Check: check, Kernel: a.kernel,
			Expected: expected, Got: got,
		})
	}

	// Every decline must carry a reason: "static didn't feel like it"
	// is not a diagnosable state.
	checks++
	if !a.analyzable && a.reason == "" {
		fail("decline-reason", "a decline reason for the fallback", "empty reason")
	}

	// The interpreter must be deterministic at any worker count; this
	// holds for every kernel, fallback ones most of all.
	checks++
	if a.workerDiff != "" {
		fail("worker-determinism", "identical profiles at 1 and 4 workers", a.workerDiff)
	}

	if !a.analyzable {
		return findings, checks
	}

	// Exactness: the static profile equals the interpreted one, or
	// fails with the identical error, under both sampling modes.
	checks++
	if a.staticErr != a.interpErr {
		fail("error-match",
			fmt.Sprintf("static error %q == interp error %q", a.staticErr, a.interpErr),
			"errors differ")
	} else if a.staticErr == "" {
		if a.prefixDiff != "" {
			fail("static-equals-interp", "identical profiles (prefix sampling)", a.prefixDiff)
		}
		if a.spreadDiff != "" {
			fail("static-equals-interp", "identical profiles (spread sampling)", a.spreadDiff)
		}
	}
	return findings, checks
}

// profileAuditKernel runs both profiler paths for one kernel and
// records the comparison.
func profileAuditKernel(k *bench.Kernel) (profileAudit, error) {
	a := profileAudit{kernel: k.ID()}
	f, err := k.Compile(k.MinWG)
	if err != nil {
		return a, err
	}
	a.analyzable, a.reason = interp.StaticAnalyzable(f)

	diff := func(spread bool) (string, string, string, error) {
		sp, _, serr := interp.StaticProfile(f, k.Config(k.MinWG), profileGroups, spread)
		ip, ierr := interp.InterpProfile(f, k.Config(k.MinWG), profileGroups, spread, 1)
		se, ie := "", ""
		if serr != nil {
			se = serr.Error()
		}
		if ierr != nil {
			ie = ierr.Error()
		}
		if serr != nil || ierr != nil {
			return "", se, ie, nil
		}
		return sp.Diff(ip), se, ie, nil
	}
	if a.analyzable {
		var err error
		if a.prefixDiff, a.staticErr, a.interpErr, err = diff(false); err != nil {
			return a, err
		}
		if a.spreadDiff, _, _, err = diff(true); err != nil {
			return a, err
		}
	}

	p1, err1 := interp.InterpProfile(f, k.Config(k.MinWG), profileGroups, true, 1)
	p4, err4 := interp.InterpProfile(f, k.Config(k.MinWG), profileGroups, true, 4)
	switch {
	case err1 != nil && err4 != nil:
		if err1.Error() != err4.Error() {
			a.workerDiff = fmt.Sprintf("worker errors differ: %q vs %q", err1, err4)
		}
	case err1 != nil || err4 != nil:
		a.workerDiff = fmt.Sprintf("one worker count failed: 1 → %v, 4 → %v", err1, err4)
	default:
		a.workerDiff = p1.Diff(p4)
	}
	return a, nil
}

// ProfileFindings runs the profile family: the bundled corpus subset
// plus every generator family (the generated kernels pin both the
// static families and the designed interpreter fallback), then the
// corpus-wide PolyBench coverage floor.
func ProfileFindings(ctx context.Context, kernels []*bench.Kernel, opts Options) ([]Finding, int, error) {
	all := append(append([]*bench.Kernel(nil), kernels...), bench.GeneratedCorpus()...)
	var mu sync.Mutex
	var findings []Finding
	checks := 0
	var polyStatic, polyTotal int
	var firstErr error
	perKernel(ctx, opts.Workers, all, func(k *bench.Kernel) {
		a, err := profileAuditKernel(k)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("check profile %s: %w", k.ID(), err)
			}
			return
		}
		fs, n := profileKernelFindings(a)
		findings = append(findings, fs...)
		checks += n
		if k.Suite == "polybench" {
			polyTotal++
			if a.analyzable {
				polyStatic++
			}
		}
		path := "interp"
		if a.analyzable {
			path = "static"
		}
		opts.logf("profile %-28s path %-6s %d findings", k.ID(), path, len(fs))
	})
	if firstErr != nil {
		return nil, 0, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}

	checks++
	if polyTotal > 0 {
		if frac := float64(polyStatic) / float64(polyTotal); frac < profileMinStaticFraction {
			findings = append(findings, Finding{
				Family: FamilyProfile, Check: "static-coverage",
				Expected: fmt.Sprintf("≥ %.0f%% of PolyBench statically analyzable", profileMinStaticFraction*100),
				Got:      fmt.Sprintf("%d/%d (%.0f%%)", polyStatic, polyTotal, frac*100),
			})
		}
	}
	return findings, checks, nil
}
