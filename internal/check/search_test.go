package check

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/dse"
	"repro/internal/model"
)

// fabricatedAudit builds a consistent audit: a 4-point space whose
// guided search evaluated one point (the best) and pruned the rest, and
// whose Pareto frontier matches the exhaustive one. Tests then bend one
// field at a time; the comparator must catch every bend.
func fabricatedAudit() searchAudit {
	d := func(pe, cu int) model.Design {
		return model.Design{WGSize: 64, WIPipeline: true, PE: pe, CU: cu, Mode: model.ModeBarrier}
	}
	pts := []dse.Point{
		{Design: d(1, 1), Est: 400},
		{Design: d(1, 2), Est: 300},
		{Design: d(2, 1), Est: 300},
		{Design: d(2, 2), Est: 100},
	}
	ex := &dse.Result{Points: pts}
	best := dse.Point{Design: d(2, 2), Est: 100}
	return searchAudit{
		kernel:  "fab/fab",
		exhaust: ex,
		guided: &dse.SearchResult{
			Space: 4, Evaluated: 1, Pruned: 3,
			Best: best, BestOK: true, BestIndex: 3,
			Points: []dse.Point{best},
		},
		pareto: &dse.SearchResult{
			Space: 4, Evaluated: 2, Pruned: 2,
			Best: best, BestOK: true, BestIndex: 3,
			Points:   []dse.Point{pts[0], best},
			Frontier: []dse.Point{pts[0], pts[1], best},
		},
		frontier: dse.ParetoFrontierOf(pts),
	}
}

func TestSearchComparatorCleanOnConsistentAudit(t *testing.T) {
	fs, checks, ratio := searchKernelFindings(fabricatedAudit())
	if len(fs) != 0 {
		t.Fatalf("findings on a consistent audit: %v", fs)
	}
	if checks == 0 {
		t.Fatal("no assertions evaluated")
	}
	if ratio != 0.25 {
		t.Errorf("ratio = %v, want 0.25", ratio)
	}
}

func TestSearchComparatorCatchesMismatches(t *testing.T) {
	cases := []struct {
		name  string
		bend  func(a *searchAudit)
		check string
	}{
		{"wrong best design", func(a *searchAudit) {
			a.guided.Best = a.exhaust.Points[0]
		}, "best-match"},
		{"best est not bitwise", func(a *searchAudit) {
			a.guided.Best.Est += 1e-9
		}, "best-match"},
		{"best missing", func(a *searchAudit) {
			a.guided.BestOK = false
		}, "best-match"},
		{"accounting leak", func(a *searchAudit) {
			a.guided.Pruned--
		}, "eval-accounting"},
		{"space mismatch", func(a *searchAudit) {
			a.guided.Space, a.guided.Pruned = 5, 4
		}, "eval-accounting"},
		{"evaluated point drifted", func(a *searchAudit) {
			a.guided.Points[0].Est *= 2
		}, "point-match"},
		{"frontier too short", func(a *searchAudit) {
			a.pareto.Frontier = a.pareto.Frontier[:2]
		}, "frontier-match"},
		{"frontier wrong point", func(a *searchAudit) {
			a.pareto.Frontier[1] = a.pareto.Frontier[0]
		}, "frontier-match"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := fabricatedAudit()
			tc.bend(&a)
			fs, _, _ := searchKernelFindings(a)
			found := false
			for _, f := range fs {
				if f.Family != FamilySearch {
					t.Errorf("finding family = %q", f.Family)
				}
				if f.Check == tc.check {
					found = true
				}
			}
			if !found {
				t.Errorf("bend %q not caught; findings: %v", tc.name, fs)
			}
		})
	}
}

func TestSearchMedian(t *testing.T) {
	if m := searchMedian(nil); m != 0 {
		t.Errorf("median(nil) = %v", m)
	}
	if m := searchMedian([]float64{0.3, 0.1, 0.2}); m != 0.2 {
		t.Errorf("odd median = %v, want 0.2", m)
	}
	if m := searchMedian([]float64{0.4, 0.1, 0.2, 0.3}); m != 0.25 {
		t.Errorf("even median = %v, want 0.25", m)
	}
}

// TestSearchFamilyOnKernel runs the real family end to end on two
// corpus kernels (one barrier-forced): the equivalence must hold and
// the assertions must actually run.
func TestSearchFamilyOnKernel(t *testing.T) {
	ks := []*bench.Kernel{bench.Find("nn", "nn"), bench.Find("hotspot", "hotspot")}
	rep, err := Run(context.Background(), Options{
		Kernels:  ks,
		Families: []string{FamilySearch},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Violations(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
	// 4 per-kernel assertions × 2 kernels + the corpus ratio bound.
	if rep.Checks != 9 {
		t.Errorf("checks = %d, want 9", rep.Checks)
	}
}
