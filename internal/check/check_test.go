package check

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/model"
)

// stubModel is a deliberately controllable Predictor: healthy by
// default, with hook points each test bends to violate exactly one
// invariant. The checks must catch every bend — a checker that cannot
// fire is worse than no checker.
type stubModel struct {
	// predict overrides the full-model estimate (nil = healthy).
	predict func(d model.Design) *model.Estimate
	// predictWith overrides ablated estimates (nil = same as predict).
	predictWith func(d model.Design, ab model.Ablations) *model.Estimate
}

// healthy satisfies every invariant: cycles fall as PE·CU parallelism
// grows, the breakdown fields are sane, and ablations are neutral.
func healthy(d model.Design) *model.Estimate {
	return &model.Estimate{
		Design: d,
		Mode:   model.ModeBarrier,
		IIComp: 1,
		Depth:  5,
		NPE:    d.PE,
		NCU:    d.CU,
		Cycles: 10000/float64(d.PE*d.CU) + 5,
	}
}

func (s *stubModel) Predict(d model.Design) *model.Estimate {
	if s.predict != nil {
		return s.predict(d)
	}
	return healthy(d)
}

func (s *stubModel) PredictWith(d model.Design, ab model.Ablations) *model.Estimate {
	if s.predictWith != nil {
		return s.predictWith(d, ab)
	}
	// Deliberately NOT s.Predict: a stub that breaks the full model
	// keeps healthy ablations, so each test trips exactly one check.
	return healthy(d)
}

// grid is a small barrier-mode design grid with PE and CU chains.
func grid() []model.Design {
	var ds []model.Design
	for _, pe := range []int{1, 2, 4} {
		for _, cu := range []int{1, 2} {
			ds = append(ds, model.Design{
				WGSize: 16, WIPipeline: true, PE: pe, CU: cu, Mode: model.ModeBarrier,
			})
		}
	}
	return ds
}

func checksFired(fs []Finding) map[string]int {
	m := map[string]int{}
	for _, f := range fs {
		m[f.Check]++
	}
	return m
}

func TestInvariantsCleanOnHealthyModel(t *testing.T) {
	fs, checks, attributed := InvariantFindings("synthetic/ok", &stubModel{}, grid(), 48)
	if len(fs) != 0 {
		t.Fatalf("healthy model produced findings: %v", fs)
	}
	if checks == 0 {
		t.Fatal("no checks evaluated")
	}
	if attributed != 0 {
		t.Fatalf("healthy model attributed %d pairs", attributed)
	}
}

// TestBrokenModelsAreCaught proves no false negatives: each stub breaks
// one invariant and the matching check must fire (and only it).
func TestBrokenModelsAreCaught(t *testing.T) {
	tests := []struct {
		name      string
		stub      *stubModel
		wantCheck string
		// allowOthers tolerates legitimate co-firing (garbage estimates
		// can violate several invariants at once).
		allowOthers bool
	}{
		{
			name: "nan cycles",
			stub: &stubModel{predict: func(d model.Design) *model.Estimate {
				e := healthy(d)
				e.Cycles = math.NaN()
				return e
			}},
			wantCheck: "positive-finite",
		},
		{
			name: "negative cycles",
			stub: &stubModel{predict: func(d model.Design) *model.Estimate {
				e := healthy(d)
				e.Cycles, e.Seconds = -12, -1
				return e
			}},
			wantCheck: "positive-finite",
			// Negative cycles also flip the monotonicity tolerance, so
			// mono checks legitimately co-fire on the garbage values.
			allowOthers: true,
		},
		{
			name: "infinite cycles",
			stub: &stubModel{predict: func(d model.Design) *model.Estimate {
				e := healthy(d)
				e.Cycles = math.Inf(1)
				return e
			}},
			wantCheck: "positive-finite",
		},
		{
			name: "zero II",
			stub: &stubModel{predict: func(d model.Design) *model.Estimate {
				e := healthy(d)
				e.IIComp = 0
				return e
			}},
			wantCheck: "ii-depth",
		},
		{
			name: "NPE above requested",
			stub: &stubModel{predict: func(d model.Design) *model.Estimate {
				e := healthy(d)
				e.NPE = d.PE + 1
				return e
			}},
			wantCheck: "npe-ncu",
		},
		{
			name: "NCU below one",
			stub: &stubModel{predict: func(d model.Design) *model.Estimate {
				e := healthy(d)
				e.NCU = 0
				return e
			}},
			wantCheck: "npe-ncu",
		},
		{
			name: "cycles grow with PE, unattributed",
			stub: &stubModel{predict: func(d model.Design) *model.Estimate {
				e := healthy(d)
				e.Cycles = 1000 * float64(d.PE)
				return e
			}},
			wantCheck: "mono-pe",
		},
		{
			name: "cycles grow with CU beyond slack, unattributed",
			stub: &stubModel{predict: func(d model.Design) *model.Estimate {
				e := healthy(d)
				e.Cycles = 1000 * float64(d.CU)
				return e
			}},
			wantCheck: "mono-cu",
		},
		{
			name: "ablated estimate beats its own depth",
			stub: &stubModel{predictWith: func(d model.Design, ab model.Ablations) *model.Estimate {
				e := healthy(d)
				if ab.SingleMemLatency {
					e.Cycles = float64(e.Depth) / 2
				}
				return e
			}},
			wantCheck: "ablate-floor-A1-single-mem",
		},
		{
			name: "uncoalesced cheaper than coalesced",
			stub: &stubModel{predictWith: func(d model.Design, ab model.Ablations) *model.Estimate {
				e := healthy(d)
				if ab.NoCoalescing {
					e.Cycles /= 2
				}
				return e
			}},
			wantCheck: "ablate-coalesce",
		},
		{
			name: "MII schedule slower than SMS",
			stub: &stubModel{predictWith: func(d model.Design, ab model.Ablations) *model.Estimate {
				e := healthy(d)
				if ab.IIFromMII {
					e.Cycles *= 2
				}
				return e
			}},
			wantCheck: "ablate-mii",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			fs, _, _ := InvariantFindings("synthetic/broken", tc.stub, grid(), 48)
			fired := checksFired(fs)
			if fired[tc.wantCheck] == 0 {
				t.Fatalf("check %q did not fire; fired: %v", tc.wantCheck, fired)
			}
			if !tc.allowOthers {
				for check := range fired {
					if check != tc.wantCheck {
						t.Errorf("unrelated check %q fired (%d findings)", check, fired[check])
					}
				}
			}
			for _, f := range fs {
				if f.Family != FamilyInvariant || f.Kernel != "synthetic/broken" ||
					f.Design == "" || f.Expected == "" || f.Got == "" {
					t.Errorf("malformed finding: %+v", f)
				}
			}
		})
	}
}

// TestMonotonicityAttribution: a slowdown the estimate itself explains
// (II/Depth up, or effective parallelism down) is counted as attributed
// contention, not reported — and pipeline-mode chains are skipped
// entirely (Eq. 11–12).
func TestMonotonicityAttribution(t *testing.T) {
	attributedStub := &stubModel{predict: func(d model.Design) *model.Estimate {
		e := healthy(d)
		// Slower AND visibly contended: II grows with parallelism.
		e.Cycles = 1000 * float64(d.PE*d.CU)
		e.IIComp = d.PE * d.CU
		return e
	}}
	fs, _, attributed := InvariantFindings("synthetic/contended", attributedStub, grid(), 48)
	if n := checksFired(fs)["mono-pe"] + checksFired(fs)["mono-cu"]; n != 0 {
		t.Fatalf("attributed slowdowns reported as violations: %v", fs)
	}
	if attributed == 0 {
		t.Fatal("no pairs counted as attributed")
	}

	pipelineStub := &stubModel{predict: func(d model.Design) *model.Estimate {
		e := healthy(d)
		e.Mode = model.ModePipeline
		e.Cycles = 1000 * float64(d.PE*d.CU) // wildly non-monotone
		return e
	}}
	fs, _, attributed = InvariantFindings("synthetic/pipeline", pipelineStub, grid(), 48)
	if len(fs) != 0 || attributed != 0 {
		t.Fatalf("pipeline-mode chains not excluded: findings=%v attributed=%d", fs, attributed)
	}
}

// TestCUSlack: CU growth may legitimately cost dls·ΔCU (Eq. 7's fixed
// dispatch charge) — within the slack no finding, past it one fires.
func TestCUSlack(t *testing.T) {
	const dls = 48.0
	mk := func(extra float64) *stubModel {
		return &stubModel{predict: func(d model.Design) *model.Estimate {
			e := healthy(d)
			e.Cycles = 1000 + float64(d.CU-1)*(dls+extra) - 100/float64(d.PE)
			return e
		}}
	}
	fs, _, _ := InvariantFindings("synthetic/slack", mk(-1), grid(), dls)
	if n := checksFired(fs)["mono-cu"]; n != 0 {
		t.Fatalf("slowdown within dls slack reported: %v", fs)
	}
	fs, _, _ = InvariantFindings("synthetic/slack", mk(+10), grid(), dls)
	if n := checksFired(fs)["mono-cu"]; n == 0 {
		t.Fatal("slowdown past dls slack not reported")
	}
}

func TestAllowlist(t *testing.T) {
	fs := []Finding{
		{Check: "error-band", Kernel: "bfs/bfs_1"},
		{Check: "error-band", Kernel: "nn/nn"},
		{Check: "mono-pe", Kernel: "bfs/bfs_1"},
	}
	applyAllowlist(fs, []Allow{{Check: "error-band", Kernel: "bfs/bfs_1", Reason: "known"}})
	if !fs[0].Allowed || fs[0].Reason != "known" {
		t.Errorf("matching finding not allowed: %+v", fs[0])
	}
	if fs[1].Allowed || fs[2].Allowed {
		t.Errorf("non-matching findings allowed: %+v %+v", fs[1], fs[2])
	}

	rep := &Report{Findings: fs}
	if got := len(rep.Violations()); got != 2 {
		t.Errorf("violations = %d, want 2", got)
	}
	if got := len(rep.Allowed()); got != 1 {
		t.Errorf("allowed = %d, want 1", got)
	}

	// Wildcards: empty Check matches any check, empty Kernel any kernel.
	fs2 := []Finding{{Check: "x", Kernel: "a/b"}, {Check: "y", Kernel: "c/d"}}
	applyAllowlist(fs2, []Allow{{Reason: "blanket"}})
	if !fs2[0].Allowed || !fs2[1].Allowed {
		t.Error("blanket allow entry did not match everything")
	}
}

func TestReportTable(t *testing.T) {
	rep := &Report{
		Findings: []Finding{
			{Family: FamilyServe, Check: "b", Kernel: "k2", Design: "d", Expected: "e", Got: "g"},
			{Family: FamilyInvariant, Check: "a", Kernel: "k1", Design: "d", Expected: "e", Got: "g",
				Allowed: true, Reason: "why"},
		},
		Checks: 2, Kernels: 1,
	}
	s := rep.Table().String()
	for _, want := range []string{"invariant", "serve", "yes: why", "k1", "k2"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	// Families sort invariant first.
	if strings.Index(s, "invariant") > strings.Index(s, "serve") {
		t.Error("table not sorted family-first")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Family: FamilyInvariant, Check: "mono-pe", Kernel: "a/b",
		Design: "d1 -> d2", Expected: "less", Got: "more"}
	s := f.String()
	if !strings.Contains(s, "mono-pe") || !strings.Contains(s, "a/b") {
		t.Errorf("String() = %q", s)
	}
	f.Allowed, f.Reason = true, "known"
	if !strings.Contains(f.String(), "allowed: known") {
		t.Errorf("allowed String() = %q", f.String())
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.platform() == nil {
		t.Fatal("nil default platform")
	}
	if got := len(o.families()); got != 5 {
		t.Errorf("default families = %d, want 5", got)
	}
	if o.simGroups() != 64 {
		t.Errorf("default sim groups = %d, want 64", o.simGroups())
	}
	if (Options{Smoke: true}).simGroups() != 8 {
		t.Error("smoke sim groups != 8")
	}
	if o.errorBand() <= 0 {
		t.Error("default error band not positive")
	}
	full, smoke := len(o.kernels()), len((Options{Smoke: true}).kernels())
	if full != len(bench.All()) {
		t.Errorf("default corpus = %d kernels, want %d", full, len(bench.All()))
	}
	if smoke >= full || smoke == 0 {
		t.Errorf("smoke subset = %d of %d", smoke, full)
	}
}

func TestRunRejectsUnknownFamily(t *testing.T) {
	_, err := Run(context.Background(), Options{Families: []string{"nonsense"}})
	if err == nil || !strings.Contains(err.Error(), "nonsense") {
		t.Fatalf("err = %v, want unknown-family error", err)
	}
}

// TestRunSingleKernel is the end-to-end path: invariants over a real
// kernel's real design space must come back clean.
func TestRunSingleKernel(t *testing.T) {
	k := bench.Find("kmeans", "swap")
	if k == nil {
		t.Fatal("kmeans/swap missing")
	}
	rep, err := Run(context.Background(), Options{
		Kernels:  []*bench.Kernel{k},
		Families: []string{FamilyInvariant},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("violations on kmeans/swap: %v", v)
	}
	if rep.Checks == 0 || rep.Kernels != 1 {
		t.Errorf("checks=%d kernels=%d", rep.Checks, rep.Kernels)
	}
}

func TestFingerprintDiff(t *testing.T) {
	if got := fingerprintDiff("a\nb\nc", "a\nX\nc"); !strings.Contains(got, "line 2") {
		t.Errorf("diff = %q", got)
	}
	if got := fingerprintDiff("a\nb", "a\nb\nc"); !strings.Contains(got, "lengths differ") {
		t.Errorf("length diff = %q", got)
	}
}
