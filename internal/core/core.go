// Package core is the public facade of the FlexCL library: compile an
// OpenCL kernel, analyze it for a platform and launch geometry, predict
// its performance at any design point analytically, validate against the
// cycle-level simulator, and explore whole design spaces.
//
// Typical use:
//
//	prog, _ := core.Compile("vadd.cl", src, nil)
//	k := prog.Kernel("vadd")
//	an, _ := core.Analyze(ctx, k, core.Virtex7(), launch)
//	est := an.Predict(core.Design{WGSize: 64, WIPipeline: true, PE: 4, CU: 2,
//	    Mode: core.ModePipeline})
//	fmt.Println(est.Cycles, est.Seconds)
package core

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/model"
	"repro/internal/opencl/ast"
	"repro/internal/rtlsim"
)

// Re-exported types: the facade's vocabulary.
type (
	// Design is one optimization configuration (work-group size,
	// pipelining, PE/CU parallelism, communication mode).
	Design = model.Design
	// Estimate is an analytical prediction with its full breakdown.
	Estimate = model.Estimate
	// Analysis is the per-kernel analysis reused across design points.
	Analysis = model.Analysis
	// Platform describes an FPGA board.
	Platform = device.Platform
	// Launch binds buffers, scalars and the NDRange for profiling.
	Launch = interp.Config
	// Buffer is a global-memory buffer.
	Buffer = interp.Buffer
	// NDRange is the launch geometry.
	NDRange = interp.NDRange
	// Workload is a kernel bundled with its workload definition, as used
	// by the design-space explorer (the benchmark corpus is built from
	// these; custom kernels can construct them directly).
	Workload = bench.Kernel
	// BufSpec declares one of a Workload's buffers.
	BufSpec = bench.Buf
	// Exploration is a fully evaluated design space.
	Exploration = dse.Result
	// ExploreOptions tunes an exploration (worker count, pruning,
	// simulation fidelity, cache sharing).
	ExploreOptions = dse.Options
	// GuidedSearch is the outcome of a branch-and-bound exploration:
	// the same best design (and Pareto frontier) as an exhaustive
	// model-only Exploration, with most of the space pruned by bounds.
	GuidedSearch = dse.SearchResult
	// SearchOptions tunes a guided search (platform, workers, cache
	// sharing, Pareto-frontier mode).
	SearchOptions = dse.SearchOptions
	// SimResult is one ground-truth simulation.
	SimResult = rtlsim.Result
)

// Communication modes (§3.5).
const (
	ModeBarrier  = model.ModeBarrier
	ModePipeline = model.ModePipeline
)

// Arg is a scalar kernel-argument value.
type Arg = interp.Val

// IntArg builds an integer scalar argument.
func IntArg(v int64) Arg { return interp.IntVal(v) }

// FloatArg builds a floating scalar argument.
func FloatArg(v float64) Arg { return interp.FloatVal(v) }

// NewFloatBuffer allocates a float buffer of n elements.
func NewFloatBuffer(k ast.BaseKind, n int) *Buffer { return interp.NewFloatBuffer(k, n) }

// NewIntBuffer allocates an integer buffer of n elements.
func NewIntBuffer(k ast.BaseKind, n int) *Buffer { return interp.NewIntBuffer(k, n) }

// Float and Int are the common element kinds for buffer construction.
const (
	Float = ast.KFloat
	Int   = ast.KInt
)

// Workload buffer fill patterns (see bench.Fill).
const (
	FillZero  = bench.FillZero
	FillRamp  = bench.FillRamp
	FillNoise = bench.FillNoise
	FillOne   = bench.FillOne
)

// Virtex7 returns the paper's primary platform.
func Virtex7() *Platform { return device.Virtex7() }

// KU060 returns the UltraScale robustness platform.
func KU060() *Platform { return device.KU060() }

// Program is a compiled OpenCL translation unit.
type Program struct {
	Kernels []*ir.Func
}

// Compile parses, checks and lowers OpenCL source. defines predefines
// object-like macros (like -D on a compiler command line).
func Compile(name string, src []byte, defines map[string]string) (*Program, error) {
	m, err := irgen.Compile(name, src, defines)
	if err != nil {
		return nil, err
	}
	if len(m.Kernels) == 0 {
		return nil, fmt.Errorf("core: no __kernel functions in %s", name)
	}
	return &Program{Kernels: m.Kernels}, nil
}

// Kernel returns the kernel with the given name, or nil.
func (p *Program) Kernel(name string) *ir.Func {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// Analyze runs FlexCL's kernel analysis (§3.2) for one launch: dynamic
// profiling of a few work-groups for trip counts and the memory trace,
// plus platform micro-benchmark profiling. The launch's buffers are
// mutated (profiling executes the kernel). ctx cancellation is honored
// at stage boundaries; pass context.Background() when there is no
// deadline to propagate.
func Analyze(ctx context.Context, f *ir.Func, p *Platform, launch *Launch) (*Analysis, error) {
	return model.Analyze(ctx, f, p, launch, model.AnalysisOptions{})
}

// Simulate runs the cycle-level ground-truth simulator ("System Run") at
// one design point. maxGroups caps the simulated work-groups (0 = all).
func Simulate(f *ir.Func, p *Platform, launch *Launch, d Design, maxGroups int) (*SimResult, error) {
	return rtlsim.Simulate(f, p, launch, d, rtlsim.Options{MaxGroups: maxGroups})
}

// Run executes the kernel functionally over the whole NDRange (no
// timing), mutating the launch buffers. Useful for validating kernels.
func Run(f *ir.Func, launch *Launch) error {
	return interp.Run(f, launch)
}

// Explore evaluates a workload's full design space with the analytical
// model and (unless modelOnly) the ground-truth simulator. The space is
// sharded over all available cores; use ExploreOpts for full control.
func Explore(ctx context.Context, w *Workload, p *Platform, modelOnly bool) (*Exploration, error) {
	return ExploreOpts(ctx, w, ExploreOptions{
		Platform:     p,
		SimMaxGroups: 8,
		SkipActual:   modelOnly,
		SkipBaseline: true,
	})
}

// ExploreOpts evaluates a workload's design space with explicit
// options and cancellation: opts.Workers shards the point evaluations
// (0 = all cores, 1 = serial; the output is identical either way), and
// cancelling ctx stops the exploration.
func ExploreOpts(ctx context.Context, w *Workload, opts ExploreOptions) (*Exploration, error) {
	return dse.Explore(ctx, w, opts)
}

// Search runs the guided branch-and-bound exploration of a workload's
// design space: provably equivalent to a model-only ExploreOpts — same
// best design, exact tie-breaks included — while evaluating only the
// points the model's own lower bounds cannot exclude. opts.Pareto
// additionally returns the cycles-vs-resource Pareto frontier.
func Search(ctx context.Context, w *Workload, opts SearchOptions) (*GuidedSearch, error) {
	return dse.Search(ctx, w, opts)
}

// SearchStrategies as spelled on the CLI -search flag and the v2 API.
const (
	StrategyExhaustive = dse.StrategyExhaustive
	StrategyGuided     = dse.StrategyGuided
	StrategyPareto     = dse.StrategyPareto
)

// ParetoFrontierOf computes the cycles-vs-resource Pareto frontier of an
// exhaustively evaluated point set (what GuidedSearch.Frontier matches).
func ParetoFrontierOf(pts []dse.Point) []dse.Point {
	return dse.ParetoFrontierOf(pts)
}

// DesignSpace enumerates the default design space for a work-group size
// range on a platform.
func DesignSpace(maxWG int64, p *Platform) []Design {
	return model.DefaultSpace(maxWG, p.MaxPE, p.MaxCU)
}
