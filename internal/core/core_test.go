package core_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

const vadd = `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = a[i] + b[i]; }
}`

func vaddLaunch(n int64, wg int64) *core.Launch {
	a := core.NewFloatBuffer(core.Float, int(n))
	b := core.NewFloatBuffer(core.Float, int(n))
	c := core.NewFloatBuffer(core.Float, int(n))
	for i := int64(0); i < n; i++ {
		a.F[i] = float64(i)
		b.F[i] = float64(2 * i)
	}
	return &core.Launch{
		Range:   core.NDRange{Global: [3]int64{n}, Local: [3]int64{wg}},
		Buffers: map[string]*core.Buffer{"a": a, "b": b, "c": c},
		Scalars: map[string]core.Arg{"n": core.IntArg(n)},
	}
}

func TestCompile(t *testing.T) {
	prog, err := core.Compile("vadd.cl", []byte(vadd), nil)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Kernel("vadd") == nil {
		t.Fatal("kernel lookup failed")
	}
	if prog.Kernel("nothere") != nil {
		t.Fatal("phantom kernel")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := core.Compile("bad.cl", []byte("__kernel void k( {"), nil); err == nil {
		t.Fatal("expected syntax error")
	}
	if _, err := core.Compile("empty.cl", []byte("float f(float x) { return x; }"), nil); err == nil ||
		!strings.Contains(err.Error(), "no __kernel") {
		t.Fatalf("expected no-kernel error, got %v", err)
	}
}

func TestRunFunctional(t *testing.T) {
	prog, err := core.Compile("vadd.cl", []byte(vadd), nil)
	if err != nil {
		t.Fatal(err)
	}
	launch := vaddLaunch(256, 64)
	if err := core.Run(prog.Kernel("vadd"), launch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if launch.Buffers["c"].F[i] != float64(3*i) {
			t.Fatalf("c[%d] = %v", i, launch.Buffers["c"].F[i])
		}
	}
}

func TestAnalyzePredictSimulateRoundTrip(t *testing.T) {
	prog, err := core.Compile("vadd.cl", []byte(vadd), nil)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.Kernel("vadd")
	p := core.Virtex7()
	an, err := core.Analyze(context.Background(), k, p, vaddLaunch(4096, 64))
	if err != nil {
		t.Fatal(err)
	}
	d := core.Design{WGSize: 64, WIPipeline: true, PE: 2, CU: 2, Mode: core.ModePipeline}
	est := an.Predict(d)
	if est.Cycles <= 0 || est.Seconds <= 0 {
		t.Fatalf("bad estimate %+v", est)
	}
	sim, err := core.Simulate(k, p, vaddLaunch(4096, 64), d, 8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := est.Cycles / sim.Cycles
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("model far from simulator: est %v sim %v", est.Cycles, sim.Cycles)
	}
}

func TestDesignSpaceHelper(t *testing.T) {
	ds := core.DesignSpace(256, core.Virtex7())
	if len(ds) == 0 {
		t.Fatal("empty design space")
	}
}

func TestPlatformsDistinct(t *testing.T) {
	if core.Virtex7().Name == core.KU060().Name {
		t.Fatal("platforms aliased")
	}
}

// TestSearchFacade: the guided branch-and-bound search is reachable
// through the facade and agrees with an exhaustive model-only
// exploration of the same workload.
func TestSearchFacade(t *testing.T) {
	w := bench.Find("nn", "nn")
	if w == nil {
		t.Fatal("nn/nn missing")
	}
	ctx := context.Background()
	ex, err := core.Explore(ctx, w, core.Virtex7(), true)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := core.Search(ctx, w, core.SearchOptions{Pareto: true})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := ex.BestByModel()
	if !ok || !sr.BestOK {
		t.Fatalf("best missing (exhaustive ok=%v, guided ok=%v)", ok, sr.BestOK)
	}
	if sr.Best.Design != best.Design || sr.Best.Est != best.Est {
		t.Errorf("guided best %v (%v) != exhaustive %v (%v)",
			sr.Best.Design, sr.Best.Est, best.Design, best.Est)
	}
	if sr.Evaluated+sr.Pruned != sr.Space || sr.Evaluated >= sr.Space {
		t.Errorf("accounting: evaluated %d pruned %d space %d", sr.Evaluated, sr.Pruned, sr.Space)
	}
	want := core.ParetoFrontierOf(ex.Points)
	if len(sr.Frontier) != len(want) {
		t.Fatalf("frontier %d points, want %d", len(sr.Frontier), len(want))
	}
	for i := range want {
		if sr.Frontier[i] != want[i] {
			t.Errorf("frontier[%d] = %v, want %v", i, sr.Frontier[i], want[i])
		}
	}
	if core.StrategyGuided != "guided" || core.StrategyExhaustive != "exhaustive" || core.StrategyPareto != "pareto" {
		t.Error("strategy constants drifted from their wire spellings")
	}
}
