package repro_test

// Golden-corpus regression suite: one file per bundled Rodinia/PolyBench
// kernel under testdata/golden/ pins the analytical model's cycle
// predictions over a fixed design grid. Any change to the model, the
// frontend, the scheduler or the DRAM model that shifts a prediction
// fails here with a per-kernel diff — model drift must be a conscious
// choice, recorded by regenerating the corpus:
//
//	go test -run TestGoldenCorpus -update .
//
// The grid spans every WG size of each kernel's sweep × four canonical
// designs (unoptimized, pipelined, a mid parallel point, the max
// parallel point), exercising both communication modes.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/model"
)

var update = flag.Bool("update", false, "rewrite testdata/golden from current model output")

// goldenPrep shares compiled kernels and analyses across the parallel
// per-kernel subtests.
var goldenPrep = dse.NewPrepCache()

func goldenDesigns(wg int64) []model.Design {
	return []model.Design{
		{WGSize: wg, WIPipeline: false, PE: 1, CU: 1, Mode: model.ModeBarrier},
		{WGSize: wg, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModeBarrier},
		{WGSize: wg, WIPipeline: true, PE: 4, CU: 2, Mode: model.ModePipeline},
		{WGSize: wg, WIPipeline: true, PE: 16, CU: 4, Mode: model.ModePipeline},
	}
}

func goldenPath(k *bench.Kernel) string {
	name := k.Suite + "__" + strings.ReplaceAll(k.ID(), "/", "__") + ".golden"
	return filepath.Join("testdata", "golden", name)
}

// goldenCompute predicts the full grid for one kernel, returning
// "design cycles" lines in deterministic order.
func goldenCompute(t testing.TB, k *bench.Kernel) []string {
	t.Helper()
	p := device.Virtex7()
	var lines []string
	for _, wg := range k.WGSizes() {
		an, err := goldenPrep.Analysis(k, p, wg)
		if err != nil {
			t.Fatalf("analysis %s wg=%d: %v", k.ID(), wg, err)
		}
		for _, d := range goldenDesigns(wg) {
			cycles := an.Predict(d).Cycles
			lines = append(lines, d.String()+" "+
				strconv.FormatFloat(cycles, 'g', -1, 64))
		}
	}
	return lines
}

func parseGolden(t *testing.T, path string) map[string]float64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing: %v\nrun `go test -run TestGoldenCorpus -update .` to create it", err)
	}
	out := make(map[string]float64)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		design, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("%s:%d: malformed line %q", path, ln+1, line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("%s:%d: bad cycles %q: %v", path, ln+1, val, err)
		}
		out[design] = v
	}
	return out
}

func TestGoldenCorpus(t *testing.T) {
	kernels := bench.All()
	if len(kernels) == 0 {
		t.Fatal("empty corpus")
	}
	if *update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range kernels {
		k := k
		t.Run(k.Suite+"/"+k.ID(), func(t *testing.T) {
			t.Parallel()
			lines := goldenCompute(t, k)
			path := goldenPath(k)
			if *update {
				var sb strings.Builder
				fmt.Fprintf(&sb, "# golden cycle predictions for %s/%s on virtex7\n", k.Suite, k.ID())
				fmt.Fprintf(&sb, "# regenerate: go test -run TestGoldenCorpus -update .\n")
				for _, l := range lines {
					sb.WriteString(l)
					sb.WriteByte('\n')
				}
				if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want := parseGolden(t, path)
			got := make(map[string]float64, len(lines))
			for _, l := range lines {
				design, val, _ := strings.Cut(l, " ")
				v, _ := strconv.ParseFloat(val, 64)
				got[design] = v
			}
			var diffs []string
			for design, w := range want {
				g, ok := got[design]
				switch {
				case !ok:
					diffs = append(diffs, fmt.Sprintf("  %-40s pinned but no longer in the grid", design))
				case g != w:
					rel := 0.0
					if w != 0 {
						rel = (g - w) / w * 100
					}
					diffs = append(diffs, fmt.Sprintf("  %-40s want %.6g  got %.6g  (%+.3f%%)",
						design, w, g, rel))
				}
			}
			for design := range got {
				if _, ok := want[design]; !ok {
					diffs = append(diffs, fmt.Sprintf("  %-40s new grid point, not pinned", design))
				}
			}
			if len(diffs) > 0 {
				sort.Strings(diffs)
				t.Errorf("model drift for %s (%d of %d grid points):\n%s\n"+
					"If intentional, regenerate with `go test -run TestGoldenCorpus -update .` and commit the diff.",
					k.ID(), len(diffs), len(want), strings.Join(diffs, "\n"))
			}
		})
	}
}

// TestGoldenNoOrphans fails when testdata/golden contains files for
// kernels that no longer exist (renames must clean up their pins).
func TestGoldenNoOrphans(t *testing.T) {
	if *update {
		t.Skip("skipped during -update")
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden corpus missing: %v", err)
	}
	valid := make(map[string]bool)
	for _, k := range bench.All() {
		valid[filepath.Base(goldenPath(k))] = true
	}
	for _, e := range entries {
		if !valid[e.Name()] {
			t.Errorf("orphan golden file %s (kernel removed or renamed?)", e.Name())
		}
	}
	if len(entries) != len(valid) {
		t.Errorf("%d golden files for %d kernels", len(entries), len(valid))
	}
}
