// Command flexcl-dse explores the optimization design space of a
// benchmark kernel: it evaluates every configuration (work-group size ×
// pipelining × PE × CU × communication mode) with the FlexCL analytical
// model — within seconds, as §4.3 demonstrates — and optionally validates
// the ranking against the cycle-level simulator. -search=guided swaps the
// exhaustive sweep for the branch-and-bound search (same best design,
// a fraction of the evaluations); -search=pareto additionally reports the
// cycles-vs-resource Pareto frontier.
//
// Usage:
//
//	flexcl-dse -bench hotspot -kernel hotspot [-sim] [-top 10] [-workers N]
//	flexcl-dse -bench hotspot -kernel hotspot -search guided
//	flexcl-dse -bench-json BENCH_dse.json [-bench-all]
//	flexcl-dse -artifact-dir ~/.cache/flexcl -bench hotspot -kernel hotspot
//	flexcl-dse -list
//
// -artifact-dir persists compile+analyze results between runs: the
// second invocation against the same directory skips the profiling
// interpreter entirely (see docs/SERVE.md "Warm restarts").
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/report"
	"repro/internal/telemetry"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name (e.g. hotspot)")
		kernel    = flag.String("kernel", "", "kernel name (e.g. hotspot)")
		platform  = flag.String("platform", "virtex7", "virtex7 or ku060")
		sim       = flag.Bool("sim", false, "validate against the cycle-level simulator (exhaustive search only)")
		search    = flag.String("search", dse.StrategyExhaustive, "exhaustive, guided (branch-and-bound) or pareto (guided + frontier)")
		top       = flag.Int("top", 10, "show the N best designs")
		workers   = flag.Int("workers", 0, "exploration worker goroutines (0 = all cores, 1 = serial; output is identical)")
		list      = flag.Bool("list", false, "list available kernels and exit")
		benchJSON   = flag.String("bench-json", "", "benchmark guided search vs exhaustive exploration over the corpus and write a JSON report to this file")
		benchAll    = flag.Bool("bench-all", false, "with -bench-json: run the full 60-kernel corpus instead of the smoke subset")
		trace       = flag.Bool("trace", false, "print a per-stage timing table of the exploration after the results")
		artifactDir = flag.String("artifact-dir", "", "persist compile+analyze results to this directory and reuse them across runs (empty = memory only)")
	)
	flag.Parse()

	if *list {
		t := report.New("Available kernels", "Suite", "Benchmark", "Kernel", "#WIs", "WG sizes")
		for _, k := range bench.All() {
			t.Add(k.Suite, k.Bench, k.Name, k.NWI(), fmt.Sprint(k.WGSizes()))
		}
		t.Write(os.Stdout)
		return
	}
	p, ok := device.Platforms()[*platform]
	if !ok {
		fmt.Fprintf(os.Stderr, "flexcl-dse: unknown platform %q\n", *platform)
		os.Exit(1)
	}
	cache, err := prepCache(*artifactDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexcl-dse:", err)
		os.Exit(1)
	}
	// Trailing artifact writes land after the results print; wait for
	// them so the next run actually starts warm.
	defer cache.Flush()
	if *benchJSON != "" {
		if err := benchSearch(*benchJSON, p, *workers, *benchAll, cache); err != nil {
			fmt.Fprintln(os.Stderr, "flexcl-dse:", err)
			os.Exit(1)
		}
		return
	}
	if *benchName == "" || *kernel == "" {
		flag.Usage()
		os.Exit(2)
	}
	k := bench.Find(*benchName, *kernel)
	if k == nil {
		fmt.Fprintf(os.Stderr, "flexcl-dse: kernel %s/%s not found (use -list)\n", *benchName, *kernel)
		os.Exit(1)
	}

	// With -trace the exploration becomes one trace; the per-stage table
	// (prep, compile, profile, sweep/search, …) prints after the results.
	ctx := context.Background()
	var tr *telemetry.Tracer
	var root *telemetry.Span
	if *trace {
		tr = telemetry.New(telemetry.Options{Capacity: 8})
		ctx, root = tr.StartTrace(ctx, "cli", "flexcl-dse "+k.ID())
	}

	switch *search {
	case dse.StrategyExhaustive:
	case dse.StrategyGuided, dse.StrategyPareto:
		if *sim {
			fmt.Fprintln(os.Stderr, "flexcl-dse: -sim requires -search=exhaustive (guided search evaluates only the designs its bounds cannot prune)")
			os.Exit(2)
		}
		runGuided(ctx, k, p, *search, *workers, *top, cache)
		finishTrace(tr, root)
		return
	default:
		fmt.Fprintf(os.Stderr, "flexcl-dse: unknown -search %q (want exhaustive, guided or pareto)\n", *search)
		os.Exit(2)
	}

	r, err := core.ExploreOpts(ctx, k, core.ExploreOptions{
		Platform:     p,
		SimMaxGroups: 8,
		SkipActual:   !*sim,
		SkipBaseline: true,
		Workers:      *workers,
		Cache:        cache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexcl-dse:", err)
		os.Exit(1)
	}
	fmt.Printf("explored %d designs of %s on %s in %v (model work %v, sim work %v)\n",
		len(r.Points), k.ID(), p.Name, r.WallTime.Round(time.Millisecond),
		r.ModelTime.Round(time.Millisecond), r.SimTime.Round(time.Millisecond))

	t := report.New("Best designs by FlexCL estimate",
		"Design", "FlexCL cycles", "Simulated cycles", "Err(%)")
	best := append([]dse.Point{}, r.Points...)
	sort.SliceStable(best, func(i, j int) bool { return best[i].Est < best[j].Est })
	n := *top
	if n > len(best) {
		n = len(best)
	}
	for _, pt := range best[:n] {
		actual, errPct := "-", "-"
		if pt.Actual > 0 {
			actual = fmt.Sprintf("%.0f", pt.Actual)
			errPct = fmt.Sprintf("%.1f", abs(pt.Est-pt.Actual)/pt.Actual*100)
		}
		t.Add(pt.Design.String(), fmt.Sprintf("%.0f", pt.Est), actual, errPct)
	}
	t.Write(os.Stdout)

	if *sim {
		fe, _ := r.AvgErrors()
		gapStr, spStr := "n/a", "n/a"
		if gap, ok := r.GapToOptimum(); ok {
			gapStr = fmt.Sprintf("%.1f%%", gap)
		}
		if sp, ok := r.SpeedupOverBaseline(); ok {
			spStr = fmt.Sprintf("%.0fx", sp)
		}
		fmt.Printf("\navg |error| %.1f%%  selected-design gap to optimum %s  speedup over unoptimized %s\n",
			fe, gapStr, spStr)
	}
	finishTrace(tr, root)
}

// prepCache builds the run's shared prep cache, disk-backed when an
// artifact directory was given.
func prepCache(dir string) (*dse.PrepCache, error) {
	if dir == "" {
		return dse.NewPrepCache(), nil
	}
	store, err := artifact.Open(dir)
	if err != nil {
		return nil, err
	}
	return dse.NewPrepCacheOpts(dse.PrepCacheOptions{Store: store}), nil
}

// finishTrace ends a -trace run's root span and prints the stage table.
// A nil root (no -trace) is a no-op.
func finishTrace(tr *telemetry.Tracer, root *telemetry.Span) {
	if root == nil {
		return
	}
	root.End()
	if v, ok := tr.Get("cli"); ok {
		fmt.Println()
		v.WriteTable(os.Stdout)
	}
}

// runGuided runs the branch-and-bound search and prints the evaluated
// points (and, for pareto, the frontier).
func runGuided(ctx context.Context, k *bench.Kernel, p *core.Platform, strategy string, workers, top int, cache *dse.PrepCache) {
	sr, err := core.Search(ctx, k, core.SearchOptions{
		Platform: p,
		Workers:  workers,
		Pareto:   strategy == dse.StrategyPareto,
		Cache:    cache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexcl-dse:", err)
		os.Exit(1)
	}
	fmt.Printf("%s search of %s on %s: evaluated %d of %d designs (pruned %d, %.1f%%) in %v (model work %v)\n",
		strategy, k.ID(), p.Name, sr.Evaluated, sr.Space, sr.Pruned,
		float64(sr.Pruned)/float64(maxInt(sr.Space, 1))*100,
		sr.WallTime.Round(time.Millisecond), sr.ModelTime.Round(time.Millisecond))
	if sr.BestOK {
		fmt.Printf("best design %s  %.0f cycles (identical to exhaustive exploration)\n",
			sr.Best.Design, sr.Best.Est)
	}

	t := report.New("Evaluated designs by FlexCL estimate", "Design", "FlexCL cycles")
	pts := append([]dse.Point{}, sr.Points...)
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Est < pts[j].Est })
	if top > len(pts) {
		top = len(pts)
	}
	for _, pt := range pts[:top] {
		t.Add(pt.Design.String(), fmt.Sprintf("%.0f", pt.Est))
	}
	t.Write(os.Stdout)

	if strategy == dse.StrategyPareto {
		ft := report.New("Pareto frontier (cycles vs PE·CU resource)",
			"PE·CU", "Design", "FlexCL cycles")
		for _, pt := range sr.Frontier {
			ft.Add(dse.Resource(pt.Design), pt.Design.String(), fmt.Sprintf("%.0f", pt.Est))
		}
		ft.Write(os.Stdout)
	}
}

// benchRow is one kernel's guided-vs-exhaustive measurement in the
// BENCH_dse.json artifact.
type benchRow struct {
	Kernel    string  `json:"kernel"`
	Space     int     `json:"space"`
	Evaluated int     `json:"evaluated"`
	Pruned    int     `json:"pruned"`
	EvalRatio float64 `json:"eval_ratio"`
	ExploreMS float64 `json:"explore_wall_ms"`
	SearchMS  float64 `json:"search_wall_ms"`
	Speedup   float64 `json:"speedup"`
}

type benchReport struct {
	Platform      string     `json:"platform"`
	Kernels       int        `json:"kernels"`
	MedianRatio   float64    `json:"median_eval_ratio"`
	MaxRatio      float64    `json:"max_eval_ratio"`
	MedianSpeedup float64    `json:"median_speedup"`
	Rows          []benchRow `json:"rows"`
}

// benchSmokeStride matches internal/check's smoke subset: every 6th
// corpus kernel, so CI artifacts and audit findings cover the same slice.
const benchSmokeStride = 6

func benchSearch(path string, p *core.Platform, workers int, all bool, cache *dse.PrepCache) error {
	ks := bench.All()
	if !all {
		var sub []*bench.Kernel
		for i, k := range ks {
			if i%benchSmokeStride == 0 {
				sub = append(sub, k)
			}
		}
		ks = sub
	}
	ctx := context.Background()
	rep := benchReport{Platform: p.Name, Kernels: len(ks)}
	for _, k := range ks {
		// Warm the prep cache first so both arms measure evaluation
		// work, not the shared compile+analyze cost.
		if _, err := dse.Search(ctx, k, dse.SearchOptions{Platform: p, Workers: workers, Cache: cache}); err != nil {
			return fmt.Errorf("%s: %w", k.ID(), err)
		}
		ex, err := dse.Explore(ctx, k, dse.Options{
			Platform: p, SkipActual: true, SkipBaseline: true,
			Workers: workers, Cache: cache,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", k.ID(), err)
		}
		sr, err := dse.Search(ctx, k, dse.SearchOptions{Platform: p, Workers: workers, Cache: cache})
		if err != nil {
			return fmt.Errorf("%s: %w", k.ID(), err)
		}
		row := benchRow{
			Kernel:    k.ID(),
			Space:     sr.Space,
			Evaluated: sr.Evaluated,
			Pruned:    sr.Pruned,
			ExploreMS: float64(ex.WallTime) / float64(time.Millisecond),
			SearchMS:  float64(sr.WallTime) / float64(time.Millisecond),
		}
		if sr.Space > 0 {
			row.EvalRatio = float64(sr.Evaluated) / float64(sr.Space)
		}
		if sr.WallTime > 0 {
			row.Speedup = float64(ex.WallTime) / float64(sr.WallTime)
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%-28s space=%4d eval=%3d ratio=%.3f explore=%7.2fms search=%7.2fms speedup=%5.1fx\n",
			k.ID(), row.Space, row.Evaluated, row.EvalRatio, row.ExploreMS, row.SearchMS, row.Speedup)
	}
	ratios := make([]float64, 0, len(rep.Rows))
	speedups := make([]float64, 0, len(rep.Rows))
	for _, r := range rep.Rows {
		ratios = append(ratios, r.EvalRatio)
		speedups = append(speedups, r.Speedup)
		if r.EvalRatio > rep.MaxRatio {
			rep.MaxRatio = r.EvalRatio
		}
	}
	rep.MedianRatio = median(ratios)
	rep.MedianSpeedup = median(speedups)
	fmt.Printf("kernels=%d median_eval_ratio=%.4f max_eval_ratio=%.4f median_speedup=%.1fx\n",
		rep.Kernels, rep.MedianRatio, rep.MaxRatio, rep.MedianSpeedup)

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	if n := len(sorted); n%2 == 1 {
		return sorted[n/2]
	} else {
		return (sorted[n/2-1] + sorted[n/2]) / 2
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
