// Command flexcl-dse explores the optimization design space of a
// benchmark kernel: it evaluates every configuration (work-group size ×
// pipelining × PE × CU × communication mode) with the FlexCL analytical
// model — within seconds, as §4.3 demonstrates — and optionally validates
// the ranking against the cycle-level simulator.
//
// Usage:
//
//	flexcl-dse -bench hotspot -kernel hotspot [-sim] [-top 10] [-workers N]
//	flexcl-dse -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/report"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name (e.g. hotspot)")
		kernel    = flag.String("kernel", "", "kernel name (e.g. hotspot)")
		platform  = flag.String("platform", "virtex7", "virtex7 or ku060")
		sim       = flag.Bool("sim", false, "validate against the cycle-level simulator")
		top       = flag.Int("top", 10, "show the N best designs")
		workers   = flag.Int("workers", 0, "exploration worker goroutines (0 = all cores, 1 = serial; output is identical)")
		list      = flag.Bool("list", false, "list available kernels and exit")
	)
	flag.Parse()

	if *list {
		t := report.New("Available kernels", "Suite", "Benchmark", "Kernel", "#WIs", "WG sizes")
		for _, k := range bench.All() {
			t.Add(k.Suite, k.Bench, k.Name, k.NWI(), fmt.Sprint(k.WGSizes()))
		}
		t.Write(os.Stdout)
		return
	}
	if *benchName == "" || *kernel == "" {
		flag.Usage()
		os.Exit(2)
	}
	k := bench.Find(*benchName, *kernel)
	if k == nil {
		fmt.Fprintf(os.Stderr, "flexcl-dse: kernel %s/%s not found (use -list)\n", *benchName, *kernel)
		os.Exit(1)
	}
	p, ok := device.Platforms()[*platform]
	if !ok {
		fmt.Fprintf(os.Stderr, "flexcl-dse: unknown platform %q\n", *platform)
		os.Exit(1)
	}

	r, err := core.ExploreOpts(context.Background(), k, core.ExploreOptions{
		Platform:     p,
		SimMaxGroups: 8,
		SkipActual:   !*sim,
		SkipBaseline: true,
		Workers:      *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexcl-dse:", err)
		os.Exit(1)
	}
	fmt.Printf("explored %d designs of %s on %s in %v (model work %v, sim work %v)\n",
		len(r.Points), k.ID(), p.Name, r.WallTime.Round(time.Millisecond),
		r.ModelTime.Round(time.Millisecond), r.SimTime.Round(time.Millisecond))

	t := report.New("Best designs by FlexCL estimate",
		"Design", "FlexCL cycles", "Simulated cycles", "Err(%)")
	best := append([]dse.Point{}, r.Points...)
	sort.SliceStable(best, func(i, j int) bool { return best[i].Est < best[j].Est })
	n := *top
	if n > len(best) {
		n = len(best)
	}
	for _, pt := range best[:n] {
		actual, errPct := "-", "-"
		if pt.Actual > 0 {
			actual = fmt.Sprintf("%.0f", pt.Actual)
			errPct = fmt.Sprintf("%.1f", abs(pt.Est-pt.Actual)/pt.Actual*100)
		}
		t.Add(pt.Design.String(), fmt.Sprintf("%.0f", pt.Est), actual, errPct)
	}
	t.Write(os.Stdout)

	if *sim {
		fe, _ := r.AvgErrors()
		gapStr, spStr := "n/a", "n/a"
		if gap, ok := r.GapToOptimum(); ok {
			gapStr = fmt.Sprintf("%.1f%%", gap)
		}
		if sp, ok := r.SpeedupOverBaseline(); ok {
			spStr = fmt.Sprintf("%.0fx", sp)
		}
		fmt.Printf("\navg |error| %.1f%%  selected-design gap to optimum %s  speedup over unoptimized %s\n",
			fe, gapStr, spStr)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
