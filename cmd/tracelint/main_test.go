package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func lintSrc(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return lintFile(fset, f)
}

func TestEndedSpanPasses(t *testing.T) {
	probs := lintSrc(t, `package p
func f(ctx context.Context) {
	ctx, sp := telemetry.Start(ctx, "compile")
	defer sp.End()
	_ = ctx
}`)
	if len(probs) != 0 {
		t.Fatalf("want clean, got %v", probs)
	}
}

func TestClosureEndPasses(t *testing.T) {
	probs := lintSrc(t, `package p
func f(ctx context.Context) {
	_, sp := telemetry.Start(ctx, "search")
	defer func() {
		sp.Annotate("k", "v")
		sp.End()
	}()
}`)
	if len(probs) != 0 {
		t.Fatalf("want clean, got %v", probs)
	}
}

func TestDelegatedSpanPasses(t *testing.T) {
	probs := lintSrc(t, `package p
func f(ctx context.Context) {
	ctx, root := tr.StartTrace(ctx, "id", "name")
	finish(tr, root)
}`)
	if len(probs) != 0 {
		t.Fatalf("want clean, got %v", probs)
	}
}

func TestUnendedSpanFlagged(t *testing.T) {
	probs := lintSrc(t, `package p
func leaky(ctx context.Context) {
	ctx, sp := telemetry.Start(ctx, "model")
	_ = ctx
	_ = sp
}`)
	if len(probs) != 1 || !strings.Contains(probs[0], `span "sp"`) {
		t.Fatalf("want one unended-span problem, got %v", probs)
	}
}

func TestDiscardedSpanFlagged(t *testing.T) {
	probs := lintSrc(t, `package p
func leaky(ctx context.Context) {
	ctx, _ = tr.StartTrace(ctx, "id", "name")
}`)
	if len(probs) != 1 || !strings.Contains(probs[0], "discarded") {
		t.Fatalf("want one discarded-span problem, got %v", probs)
	}
}

func TestUnrelatedStartIgnored(t *testing.T) {
	probs := lintSrc(t, `package p
func f() {
	a, b := server.Start(ctx, "not telemetry")
	_, _ = a, b
}`)
	if len(probs) != 0 {
		t.Fatalf("want clean for non-telemetry Start, got %v", probs)
	}
}
