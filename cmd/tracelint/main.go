// Command tracelint enforces span hygiene across the tree: every span
// obtained from telemetry.Start or StartTrace must either be ended in
// the same function (an <ident>.End() call, including deferred calls
// and calls inside nested closures) or delegated by passing the span
// ident to another function. Discarding the span (`ctx, _ :=`) is an
// error too — an unended span never reaches the trace ring and skews
// the stage histograms.
//
// The check is purely syntactic (go/parser, no type information), so it
// is fast enough for make check-smoke; _test.go files are skipped
// because tests legitimately construct unfinished spans.
//
// Usage:
//
//	tracelint [-root .]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root := flag.String("root", ".", "directory tree to lint")
	flag.Parse()

	fset := token.NewFileSet()
	var problems []string
	files := 0
	err := filepath.WalkDir(*root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", "vendor", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		files++
		problems = append(problems, lintFile(fset, f)...)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracelint:", err)
		os.Exit(1)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "tracelint:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("tracelint: %d files ok\n", files)
}

// lintFile checks every top-level function. Closures are covered by
// scanning the whole enclosing function body, so a span started in a
// function and ended in one of its closures (or vice versa) passes.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		for _, st := range spanStarts(fn.Body) {
			if st.name == "_" {
				problems = append(problems, fmt.Sprintf(
					"%s: span from %s is discarded (never ended)",
					fset.Position(st.pos), st.kind))
				continue
			}
			if !spanHandled(fn.Body, st.name) {
				problems = append(problems, fmt.Sprintf(
					"%s: span %q from %s has no %s.End() call (or delegation) in %s",
					fset.Position(st.pos), st.name, st.kind, st.name, fn.Name.Name))
			}
		}
	}
	return problems
}

type spanStart struct {
	name string
	kind string // "telemetry.Start" or "StartTrace"
	pos  token.Pos
}

// spanStarts finds `_, sp := telemetry.Start(...)` and
// `ctx, sp := x.StartTrace(...)` assignments (":=" or "=").
func spanStarts(body *ast.BlockStmt) []spanStart {
	var out []spanStart
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var kind string
		switch sel.Sel.Name {
		case "Start":
			// Only the telemetry package's Start — other Start calls
			// (timers, servers) are none of our business.
			if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "telemetry" {
				return true
			}
			kind = "telemetry.Start"
		case "StartTrace":
			kind = "StartTrace"
		default:
			return true
		}
		id, ok := as.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		out = append(out, spanStart{name: id.Name, kind: kind, pos: as.Pos()})
		return true
	})
	return out
}

// spanHandled reports whether the body contains <name>.End() or passes
// <name> as an argument to some call (delegating the End to the callee).
func spanHandled(body *ast.BlockStmt, name string) bool {
	handled := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == name {
				handled = true
				return false
			}
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && id.Name == name {
				handled = true
				return false
			}
		}
		return true
	})
	return handled
}
