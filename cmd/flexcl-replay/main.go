// Command flexcl-replay measures a clustered flexcl-serve fleet under
// a synthetic randomized replay: it boots N in-process replicas
// (httptest listeners over real serve.Server instances, empty caches),
// joins them into a consistent-hash fleet, replays a randomized
// request stream over a corpus sample through the replica-aware
// client, and reports fleet-wide compile counts and request latency.
//
// The number that matters is computes vs distinct keys: a fleet that
// "acts like one cache" (ROADMAP item 1) performs exactly one
// compile+analyze per distinct (kernel, platform, WG) key no matter
// how many replicas received requests for it. A single replica
// trivially has this property; the 3-replica run proves the
// consistent-hash prep forwarding preserves it fleet-wide.
//
// Usage:
//
//	flexcl-replay [-replicas 1,3] [-requests 240] [-kernels 8]
//	              [-wg-sweep 1] [-concurrency 8] [-hedge 0]
//	              [-seed 1] [-out BENCH_replay.json]
//
// The output JSON (one result per fleet size) is written to -out and
// uploaded as a CI artifact by `make bench-replay`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/serve"
	"repro/pkg/flexclclient"
)

// workItem is one replayed request: a corpus kernel at one WG size.
type workItem struct {
	id string // "bench/kernel"
	wg int64
}

// fleetResult is the measured outcome of one fleet size.
type fleetResult struct {
	Replicas     int     `json:"replicas"`
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	DistinctKeys int     `json:"distinct_keys"`
	// Computes is the fleet-wide sum of actual compile+analyze
	// executions; CompileOnce reports Computes == DistinctKeys.
	Computes    uint64 `json:"computes"`
	CompileOnce bool   `json:"compile_once"`
	// ForwardHits counts preps answered across a replica boundary
	// (zero for a single replica).
	ForwardHits uint64  `json:"forward_hits"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	WallMs      float64 `json:"wall_ms"`
}

type report struct {
	Requests    int           `json:"requests"`
	Kernels     int           `json:"kernels"`
	WGSweep     int           `json:"wg_sweep"`
	Concurrency int           `json:"concurrency"`
	HedgeMs     float64       `json:"hedge_ms"`
	Seed        int64         `json:"seed"`
	Fleets      []fleetResult `json:"fleets"`
}

func main() {
	var (
		replicasFlag = flag.String("replicas", "1,3", "comma-separated fleet sizes to measure")
		requests     = flag.Int("requests", 240, "requests per fleet replay")
		kernels      = flag.Int("kernels", 8, "corpus kernels sampled into the stream")
		wgSweep      = flag.Int("wg-sweep", 1, "work-group sizes per kernel (distinct keys = kernels × wg-sweep)")
		concurrency  = flag.Int("concurrency", 8, "in-flight client requests")
		hedge        = flag.Duration("hedge", 0, "client hedge delay (0 = no hedging)")
		seed         = flag.Int64("seed", 1, "random seed for the request stream")
		out          = flag.String("out", "BENCH_replay.json", "output JSON path")
	)
	flag.Parse()

	var sizes []int
	for _, f := range strings.Split(*replicasFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "flexcl-replay: bad -replicas entry %q\n", f)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}

	stream, distinct := buildStream(*requests, *kernels, *wgSweep, *seed)
	rep := report{
		Requests:    *requests,
		Kernels:     *kernels,
		WGSweep:     *wgSweep,
		Concurrency: *concurrency,
		HedgeMs:     float64(*hedge) / float64(time.Millisecond),
		Seed:        *seed,
	}
	for _, n := range sizes {
		res := runFleet(n, stream, distinct, *concurrency, *hedge)
		rep.Fleets = append(rep.Fleets, res)
		fmt.Printf("replicas=%d requests=%d distinct=%d computes=%d compile_once=%v forward_hits=%d p50=%.1fms p99=%.1fms errors=%d\n",
			res.Replicas, res.Requests, res.DistinctKeys, res.Computes,
			res.CompileOnce, res.ForwardHits, res.P50Ms, res.P99Ms, res.Errors)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexcl-replay: encoding report: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "flexcl-replay: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	// The single-fleet sanity bar: every measured fleet must keep the
	// compile-once property, or the replay fails the build.
	for _, f := range rep.Fleets {
		if !f.CompileOnce || f.Errors > 0 {
			fmt.Fprintf(os.Stderr,
				"flexcl-replay: fleet of %d broke compile-once (computes=%d distinct=%d errors=%d)\n",
				f.Replicas, f.Computes, f.DistinctKeys, f.Errors)
			os.Exit(1)
		}
	}
}

// buildStream samples nk corpus kernels × sweep WG sizes and draws a
// seeded random stream of length n over them. Every sampled key
// appears at least once (the stream opens with one pass over the
// keys), so distinct == len(keys) holds by construction.
func buildStream(n, nk, sweep int, seed int64) (stream []workItem, distinct int) {
	all := bench.All()
	if nk > len(all) {
		nk = len(all)
	}
	stride := len(all) / nk
	if stride < 1 {
		stride = 1
	}
	var keys []workItem
	for i := 0; i < nk; i++ {
		k := all[i*stride]
		wgs := k.WGSizes()
		for j := 0; j < sweep && j < len(wgs); j++ {
			keys = append(keys, workItem{id: k.ID(), wg: wgs[j]})
		}
	}
	rng := rand.New(rand.NewSource(seed))
	stream = append(stream, keys...)
	for len(stream) < n {
		stream = append(stream, keys[rng.Intn(len(keys))])
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	return stream[:n], len(keys)
}

// runFleet boots n replicas, replays the stream through the
// replica-aware client, and collapses the fleet's counters into one
// result.
func runFleet(n int, stream []workItem, distinct, concurrency int, hedge time.Duration) fleetResult {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	servers := make([]*serve.Server, n)
	listeners := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range servers {
		servers[i] = serve.New(serve.Config{Logger: quiet})
		listeners[i] = httptest.NewServer(servers[i].Handler())
		urls[i] = listeners[i].URL
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for i := range servers {
			listeners[i].Close()
			servers[i].Close(ctx)
		}
	}()
	if n > 1 {
		for i := range servers {
			if err := servers[i].ConfigureCluster(urls[i], urls); err != nil {
				fmt.Fprintf(os.Stderr, "flexcl-replay: configuring replica %d: %v\n", i, err)
				os.Exit(1)
			}
		}
	}

	opts := []flexclclient.Option{flexclclient.WithPeers(urls...)}
	if hedge > 0 && n > 1 {
		opts = append(opts, flexclclient.WithHedge(flexclclient.HedgePolicy{Delay: hedge}))
	}
	client := flexclclient.New(urls[0], nil, opts...)

	lat := make([]float64, len(stream))
	errs := make([]error, len(stream))
	t0 := time.Now()
	sem := make(chan struct{}, concurrency)
	done := make(chan struct{})
	for i := range stream {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- struct{}{} }()
			it := stream[i]
			r0 := time.Now()
			_, err := client.Predict(context.Background(), flexclclient.PredictRequest{
				Kernel: flexclclient.KernelRef{ID: it.id},
				Design: flexclclient.Design{WGSize: it.wg},
			})
			lat[i] = float64(time.Since(r0)) / float64(time.Millisecond)
			errs[i] = err
		}(i)
	}
	for range stream {
		<-done
	}
	wall := time.Since(t0)

	res := fleetResult{
		Replicas:     n,
		Requests:     len(stream),
		DistinctKeys: distinct,
		P50Ms:        quantile(lat, 0.50),
		P99Ms:        quantile(lat, 0.99),
		WallMs:       float64(wall) / float64(time.Millisecond),
	}
	for _, err := range errs {
		if err != nil {
			if res.Errors == 0 {
				fmt.Fprintf(os.Stderr, "flexcl-replay: first error: %v\n", err)
			}
			res.Errors++
		}
	}
	for _, s := range servers {
		res.Computes += s.PrepStats().Computes
		for _, p := range s.Cluster().Snapshot().Peers {
			res.ForwardHits += p.ForwardHits
		}
	}
	res.CompileOnce = res.Computes == uint64(res.DistinctKeys)
	return res
}

// quantile returns the q-quantile of xs (nearest-rank on a sorted
// copy).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}
