// Command flexcl-serve runs the FlexCL prediction/DSE service: an HTTP
// JSON API answering single-design predictions synchronously and full
// design-space explorations as polled async jobs, with Prometheus-text
// metrics, expvar, structured logs and graceful SIGTERM drain.
//
// Usage:
//
//	flexcl-serve [-addr :8080] [-workers 2] [-dse-workers 0]
//	             [-max-predicts 0] [-predict-queue 128] [-retry-after 1s]
//	             [-max-batch 256] [-batch-timeout 2m]
//	             [-pred-cache 4096] [-prep-cache 4096]
//	             [-artifact-dir /var/lib/flexcl/artifacts]
//	             [-self http://replica-0:8080]
//	             [-peers http://replica-0:8080,http://replica-1:8080]
//	             [-peer-timeout 15s]
//	             [-timeout 10s] [-explore-timeout 5m]
//	             [-drain 30s] [-log text|json]
//	             [-trace-capacity 256] [-trace-keep-slowest 32]
//	             [-debug-addr localhost:6060]
//
// Try it:
//
//	curl -s localhost:8080/v2/kernels | head
//	curl -s -X POST localhost:8080/v2/predict -d \
//	  '{"kernel":{"id":"hotspot/hotspot"},"design":{"wg_size":64,"wi_pipeline":true,"pe":4,"cu":2,"mode":"pipeline"}}'
//	curl -s -X POST localhost:8080/v2/predict:batch -d \
//	  '{"items":[{"kernel":{"id":"nn/nn"},"design":{}},{"kernel":{"id":"nw/nw1"},"design":{}}]}'
//	curl -s -X POST localhost:8080/v2/explore -d '{"kernel":{"id":"nn/nn"}}'
//	curl -s localhost:8080/v2/jobs/j000001
//	curl -s localhost:8080/metrics
//
// See docs/API.md for the wire reference (v2 and the frozen v1) and
// docs/SERVE.md for operations.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 2, "concurrent exploration jobs")
		dseWorkers  = flag.Int("dse-workers", 0, "goroutines per exploration (0 = cores/workers)")
		queue       = flag.Int("queue", 64, "max queued exploration jobs")
		maxPredicts = flag.Int("max-predicts", 0, "concurrent prediction analyses (0 = cores)")
		predQueue   = flag.Int("predict-queue", 128, "admission queue depth per lane; beyond it requests are shed with 429")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")
		maxBatch    = flag.Int("max-batch", 256, "max items per /v2/predict:batch request")
		batchTO     = flag.Duration("batch-timeout", 2*time.Minute, "batch request deadline")
		predCache   = flag.Int("pred-cache", 4096, "LRU prediction cache entries (negative disables)")
		prepCache   = flag.Int("prep-cache", 0, "completed compile+analyze cache entries (0 = 4096, negative unbounded)")
		artifactDir = flag.String("artifact-dir", "", "persist compile+analyze results to this directory and answer misses from it (warm restarts; empty = memory only)")
	selfURL     = flag.String("self", "", "this replica's advertised base URL in a clustered fleet (required with -peers)")
	peersFlag   = flag.String("peers", "", "comma-separated replica base URLs forming the fleet (empty = single node)")
	peerTO      = flag.Duration("peer-timeout", 15*time.Second, "deadline for one forwarded prep exchange against a peer")
		timeout     = flag.Duration("timeout", 10*time.Second, "synchronous request deadline")
		exploreTO   = flag.Duration("explore-timeout", 5*time.Minute, "per-job exploration deadline")
		drain       = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		logFormat   = flag.String("log", "text", "log format: text or json")
		logLevelStr = flag.String("log-level", "info", "log level: debug, info, warn, error")
		traceCap    = flag.Int("trace-capacity", 0, "finished request traces kept in memory (0 = 256, negative disables tracing)")
		traceSlow   = flag.Int("trace-keep-slowest", 0, "slowest traces additionally retained past ring rotation (0 = 32)")
		debugAddr   = flag.String("debug-addr", "", "serve pprof/expvar/trace debug endpoints on this extra address (empty = disabled; bind to localhost)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevelStr)); err != nil {
		fmt.Fprintf(os.Stderr, "flexcl-serve: bad -log-level %q\n", *logLevelStr)
		os.Exit(2)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, opts)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, opts)
	default:
		fmt.Fprintf(os.Stderr, "flexcl-serve: bad -log %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	var peers []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	if len(peers) > 0 && *selfURL == "" {
		fmt.Fprintln(os.Stderr, "flexcl-serve: -peers requires -self (this replica's own base URL)")
		os.Exit(2)
	}

	s := serve.New(serve.Config{
		Addr:                  *addr,
		Workers:               *workers,
		DSEWorkers:            *dseWorkers,
		QueueDepth:            *queue,
		MaxConcurrentPredicts: *maxPredicts,
		PredictQueueDepth:     *predQueue,
		RetryAfter:            *retryAfter,
		MaxBatchItems:         *maxBatch,
		BatchTimeout:          *batchTO,
		PredCacheSize:         *predCache,
		PrepCacheSize:         *prepCache,
		ArtifactDir:           *artifactDir,
		SelfURL:               *selfURL,
		Peers:                 peers,
		PeerTimeout:           *peerTO,
		RequestTimeout:        *timeout,
		ExploreTimeout:        *exploreTO,
		DrainTimeout:          *drain,
		TraceCapacity:         *traceCap,
		TraceKeepSlowest:      *traceSlow,
		Logger:                logger,
	})

	// The debug listener is opt-in and separate from the API port so
	// pprof never ships to the open internet by accident.
	if *debugAddr != "" {
		go func() {
			logger.Info("debug listener", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, s.DebugHandler()); err != nil {
				logger.Error("debug listener", "err", err)
			}
		}()
	}

	// SIGTERM/SIGINT cancel the context; Serve then drains in-flight
	// requests and jobs before returning.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if err := s.ListenAndServe(ctx); err != nil {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
}
