// Command flexcl estimates the performance of an OpenCL kernel on an
// FPGA platform at one design point, printing the full model breakdown —
// the FlexCL flow of Figure 2 as a CLI.
//
// Usage:
//
//	flexcl -file kernel.cl [-kernel name] [-platform virtex7|ku060]
//	       [-global 4096] [-wg 64] [-pipeline] [-pe 4] [-cu 2]
//	       [-mode barrier|pipeline] [-arg name=value]...
//
// Pointer arguments are bound to synthetic buffers sized from -global;
// integer scalar arguments default to the global size and can be set
// explicitly with -arg.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

type argList map[string]int64

func (a argList) String() string { return fmt.Sprint(map[string]int64(a)) }

func (a argList) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("bad -arg %q (want name=value)", s)
	}
	v, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return err
	}
	a[name] = v
	return nil
}

func main() {
	var (
		file     = flag.String("file", "", "OpenCL source file (required)")
		kernel   = flag.String("kernel", "", "kernel name (default: first kernel)")
		platform = flag.String("platform", "virtex7", "target platform: virtex7 or ku060")
		global   = flag.Int64("global", 4096, "global work size (1D)")
		wg       = flag.Int64("wg", 64, "work-group size")
		pipeline = flag.Bool("pipeline", true, "enable work-item pipelining")
		pe       = flag.Int("pe", 1, "PE parallelism per compute unit")
		cu       = flag.Int("cu", 1, "compute units")
		mode     = flag.String("mode", "pipeline", "communication mode: barrier or pipeline")
		simulate = flag.Bool("sim", false, "also run the cycle-level simulator for comparison")
		trace    = flag.Bool("trace", false, "print a per-stage timing table of the pipeline after the prediction")
	)
	args := argList{}
	flag.Var(args, "arg", "scalar kernel argument name=value (repeatable)")
	flag.Parse()

	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*file)
	fatal(err)

	// With -trace the whole run becomes one trace: the same spans the
	// service records (compile, profile, memtrace, model, …) are printed
	// as a per-stage table once the prediction is done.
	ctx := context.Background()
	var tr *telemetry.Tracer
	var root *telemetry.Span
	if *trace {
		tr = telemetry.New(telemetry.Options{Capacity: 8})
		ctx, root = tr.StartTrace(ctx, "cli", "flexcl "+*file)
	}

	_, csp := telemetry.Start(ctx, "compile")
	prog, err := core.Compile(*file, src, map[string]string{"WG": fmt.Sprint(*wg)})
	csp.End()
	fatal(err)
	f := prog.Kernels[0]
	if *kernel != "" {
		if f = prog.Kernel(*kernel); f == nil {
			fatal(fmt.Errorf("kernel %s not found", *kernel))
		}
	}

	p, ok := device.Platforms()[*platform]
	if !ok {
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}

	launch := makeLaunch(f, *global, *wg, args)
	an, err := core.Analyze(ctx, f, p, launch)
	fatal(err)

	d := core.Design{
		WGSize: *wg, WIPipeline: *pipeline, PE: *pe, CU: *cu,
		Mode: core.ModeBarrier,
	}
	if *mode == "pipeline" {
		d.Mode = core.ModePipeline
	}
	_, msp := telemetry.Start(ctx, "model")
	est := an.Predict(d)
	msp.End()

	fmt.Printf("kernel      %s (%s)\n", f.Name, p.Name)
	fmt.Printf("design      %v (effective mode: %v)\n", d, est.Mode)
	fmt.Printf("II_comp^wi  %d   (RecMII %d, ResMII %d)\n", est.IIComp, est.RecMII, est.ResMII)
	fmt.Printf("D_comp^PE   %d cycles\n", est.Depth)
	fmt.Printf("N_PE        %d   N_CU %d\n", est.NPE, est.NCU)
	fmt.Printf("L_mem^wi    %.2f cycles\n", est.LMemWI)
	fmt.Printf("L_comp^CU   %.0f cycles\n", est.LCompCU)
	fmt.Printf("T_kernel    %.0f cycles = %.3f ms @ %.0f MHz\n",
		est.Cycles, est.Seconds*1e3, p.ClockMHz)

	res := an.ResourceUsage(d)
	feas := "fits"
	if !res.Feasible {
		feas = "DOES NOT FIT"
	}
	fmt.Printf("resources   %d DSP slices, %d Kb BRAM (%s on %s)\n",
		res.DSPs, res.BRAMKb, feas, p.Name)

	diag := an.Diagnose(est)
	fmt.Printf("bottleneck  %v\n", diag.Bottleneck)
	for _, h := range diag.Hints {
		fmt.Printf("  hint: %s\n", h)
	}

	if *simulate {
		launch2 := makeLaunch(f, *global, *wg, args)
		_, ssp := telemetry.Start(ctx, "simulate")
		sim, err := core.Simulate(f, p, launch2, d, 8)
		ssp.End()
		fatal(err)
		errPct := 0.0
		if sim.Cycles > 0 {
			errPct = (est.Cycles - sim.Cycles) / sim.Cycles * 100
		}
		fmt.Printf("simulated   %.0f cycles (model error %+.1f%%)\n", sim.Cycles, errPct)
	}

	if root != nil {
		root.End()
		if v, ok := tr.Get("cli"); ok {
			fmt.Println()
			v.WriteTable(os.Stdout)
		}
	}
}

// makeLaunch synthesizes buffers and scalars for an arbitrary kernel:
// pointer parameters get deterministic pseudo-noise buffers sized from
// the global work size; integer scalars default to the problem size.
func makeLaunch(f *ir.Func, global, wg int64, args argList) *core.Launch {
	launch := &core.Launch{
		Range:   core.NDRange{Global: [3]int64{global}, Local: [3]int64{wg}},
		Buffers: map[string]*core.Buffer{},
		Scalars: map[string]core.Arg{},
	}
	for _, prm := range f.Params {
		if prm.T.Ptr {
			elem := prm.T.Elem()
			n := int(global) * 16 * elem.Lanes()
			if elem.Base.IsFloat() {
				b := core.NewFloatBuffer(elem.Base, n)
				for i := range b.F {
					h := uint64(i) * 0x9e3779b97f4a7c15
					b.F[i] = float64(h%1000) / 1000
				}
				launch.Buffers[prm.PName] = b
			} else {
				b := core.NewIntBuffer(elem.Base, n)
				for i := range b.I {
					b.I[i] = int64(i % 97)
				}
				launch.Buffers[prm.PName] = b
			}
			continue
		}
		v, ok := args[prm.PName]
		if !ok {
			v = global // int scalars default to the problem size
		}
		launch.Scalars[prm.PName] = core.IntArg(v)
	}
	return launch
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexcl:", err)
		os.Exit(1)
	}
}
