// Command flexcl-profile measures the profiler fast paths over the
// benchmark corpus: for every kernel it times the static slice executor
// against the interpreter on the same sampled launch, records which
// path the dispatcher takes, and writes the BENCH_profile.json artifact
// CI publishes. The speedup column is the point of the static path;
// the check family ("profile") separately proves the profiles equal.
//
// Usage:
//
//	flexcl-profile                          # smoke subset, BENCH_profile.json
//	flexcl-profile -all                     # full 60-kernel corpus + generated families
//	flexcl-profile -json out.json -reps 5
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/interp"
	"repro/internal/telemetry"
)

// row is one kernel's measurement in the artifact.
type row struct {
	Kernel   string  `json:"kernel"`
	Suite    string  `json:"suite"`
	Path     string  `json:"path"` // "static" or "interp"
	Reason   string  `json:"decline_reason,omitempty"`
	StaticMS float64 `json:"static_ms,omitempty"`
	InterpMS float64 `json:"interp_ms"`
	Speedup  float64 `json:"speedup,omitempty"`
}

type reportJSON struct {
	Kernels       int     `json:"kernels"`
	StaticKernels int     `json:"static_kernels"`
	StaticFrac    float64 `json:"static_fraction"`
	MedianSpeedup float64 `json:"median_speedup"` // over static-path kernels
	Groups        int     `json:"profile_groups"`
	Rows          []row   `json:"rows"`
}

// smokeStride matches internal/check's smoke subset so CI artifacts and
// audit findings cover the same corpus slice.
const smokeStride = 6

func main() {
	var (
		jsonPath = flag.String("json", "BENCH_profile.json", "write the measurement artifact to this file")
		all      = flag.Bool("all", false, "run the full corpus plus generated families instead of the smoke subset")
		groups   = flag.Int("groups", 8, "sampled work-groups per profile (the prep pipeline's budget)")
		reps     = flag.Int("reps", 3, "repetitions per measurement; the minimum is reported")
		trace    = flag.Bool("trace", false, "print a per-kernel timing table (compile/interp/static spans) after the run")
	)
	flag.Parse()

	// With -trace every kernel's measurement becomes a span with
	// compile/interp/static children; the table prints after the summary.
	ctx := context.Background()
	var tr *telemetry.Tracer
	var root *telemetry.Span
	if *trace {
		tr = telemetry.New(telemetry.Options{Capacity: 8})
		ctx, root = tr.StartTrace(ctx, "cli", "flexcl-profile")
	}

	ks := bench.All()
	if *all {
		ks = append(ks, bench.GeneratedCorpus()...)
	} else {
		var sub []*bench.Kernel
		for i, k := range ks {
			if i%smokeStride == 0 {
				sub = append(sub, k)
			}
		}
		ks = sub
	}

	rep := reportJSON{Kernels: len(ks), Groups: *groups}
	var speedups []float64
	for _, k := range ks {
		r, err := measure(ctx, k, *groups, *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flexcl-profile: %s: %v\n", k.ID(), err)
			os.Exit(1)
		}
		rep.Rows = append(rep.Rows, r)
		if r.Path == "static" {
			rep.StaticKernels++
			speedups = append(speedups, r.Speedup)
			fmt.Printf("%-28s static %8.3fms  interp %8.3fms  speedup %6.1fx\n",
				k.ID(), r.StaticMS, r.InterpMS, r.Speedup)
		} else {
			fmt.Printf("%-28s interp %8.3fms  (fallback: %s)\n", k.ID(), r.InterpMS, r.Reason)
		}
	}
	if rep.Kernels > 0 {
		rep.StaticFrac = float64(rep.StaticKernels) / float64(rep.Kernels)
	}
	rep.MedianSpeedup = median(speedups)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexcl-profile: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "flexcl-profile: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d/%d kernels on the static path (%.0f%%), median speedup %.1fx → %s\n",
		rep.StaticKernels, rep.Kernels, rep.StaticFrac*100, rep.MedianSpeedup, *jsonPath)

	if root != nil {
		root.End()
		if v, ok := tr.Get("cli"); ok {
			fmt.Println()
			v.WriteTable(os.Stdout)
		}
	}
}

// measure times both paths for one kernel at its smallest sweep size.
func measure(ctx context.Context, k *bench.Kernel, groups, reps int) (row, error) {
	r := row{Kernel: k.ID(), Suite: k.Suite, Path: "interp"}
	kctx, ksp := telemetry.Start(ctx, k.ID())
	defer ksp.End()

	_, csp := telemetry.Start(kctx, "compile")
	f, err := k.Compile(k.MinWG)
	csp.End()
	if err != nil {
		return r, err
	}
	ok, reason := interp.StaticAnalyzable(f)
	if !ok {
		r.Reason = reason
		ksp.Annotate("fallback", reason)
	}

	// Fresh Config per run: the interpreter mutates buffers, and both
	// arms must profile the same launch.
	_, isp := telemetry.Start(kctx, "interp")
	interpNS, err := best(reps, func() error {
		_, err := interp.InterpProfile(f, k.Config(k.MinWG), groups, true, 1)
		return err
	})
	isp.End()
	if err != nil {
		return r, err
	}
	r.InterpMS = float64(interpNS) / 1e6

	if ok {
		_, ssp := telemetry.Start(kctx, "static")
		staticNS, err := best(reps, func() error {
			_, _, err := interp.StaticProfile(f, k.Config(k.MinWG), groups, true)
			return err
		})
		ssp.End()
		if err != nil {
			return r, err
		}
		r.Path = "static"
		r.StaticMS = float64(staticNS) / 1e6
		if staticNS > 0 {
			r.Speedup = float64(interpNS) / float64(staticNS)
		}
	}
	return r, nil
}

// best runs fn reps times and returns the fastest wall time.
func best(reps int, fn func() error) (int64, error) {
	if reps < 1 {
		reps = 1
	}
	var min int64 = -1
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(t0).Nanoseconds(); min < 0 || d < min {
			min = d
		}
	}
	return min, nil
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
