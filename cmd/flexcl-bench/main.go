// Command flexcl-bench regenerates every table and figure of the paper's
// evaluation (§4) on the simulated substrate. See EXPERIMENTS.md for the
// experiment index and the paper-vs-measured record.
//
// Usage:
//
//	flexcl-bench -exp table2        # Table 2 (Rodinia, 45 kernels)
//	flexcl-bench -exp polybench     # §4.2 PolyBench accuracy
//	flexcl-bench -exp fig4          # Figure 4 series (hotspot3D, nn)
//	flexcl-bench -exp robustness    # §4.2 KU060 robustness
//	flexcl-bench -exp dsequality    # §4.3 exploration quality/speed
//	flexcl-bench -exp searchcmp     # §4.3 search comparison
//	flexcl-bench -exp table1        # Table 1 memory pattern latencies
//	flexcl-bench -exp ablation      # DESIGN.md §5 ablations
//	flexcl-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (table1|table2|polybench|fig4|robustness|dsequality|searchcmp|ablation|all)")
		maxKernels = flag.Int("max-kernels", 0, "limit kernels per suite (0 = all)")
		simGroups  = flag.Int("sim-groups", 8, "work-groups simulated per design point")
		workers    = flag.Int("workers", 0, "exploration worker goroutines per kernel (0 = all cores, 1 = serial; results are identical)")
		csvDir     = flag.String("csv", "", "also write tables/series as CSV/TSV into this directory")
	)
	flag.Parse()

	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "flexcl-bench:", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "flexcl-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("(wrote %s)\n", path)
	}

	cfg := experiments.Config{MaxKernels: *maxKernels, SimMaxGroups: *simGroups, Workers: *workers}
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "flexcl-bench %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		t := experiments.Table1(cfg)
		t.Write(os.Stdout)
		writeCSV("table1.csv", t.CSV())
		return nil
	})
	run("table2", func() error {
		t, sum, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		t.Write(os.Stdout)
		writeCSV("table2.csv", t.CSV())
		fmt.Printf("\nRodinia summary: FlexCL avg |err| %.1f%% (paper: 9.5%%), "+
			"SDAccel avg |err| %.1f%% (paper: 30.4–84.9%%), baseline failure rate %.0f%% (paper: ~42%%)\n",
			sum.AvgFlexCLErr, sum.AvgSDAccelErr, sum.BaselineFailRate*100)
		fmt.Printf("exploration: model %v vs simulated system run %v (%.0fx)\n",
			sum.TotalModelTime, sum.TotalSimTime,
			float64(sum.TotalSimTime)/float64(sum.TotalModelTime))
		return nil
	})
	run("polybench", func() error {
		t, sum, err := experiments.PolybenchAccuracy(cfg)
		if err != nil {
			return err
		}
		t.Write(os.Stdout)
		writeCSV("polybench.csv", t.CSV())
		fmt.Printf("\nPolyBench summary: FlexCL avg |err| %.1f%% (paper: 8.7%%)\n", sum.AvgFlexCLErr)
		return nil
	})
	run("fig4", func() error {
		series, err := experiments.Fig4(cfg)
		if err != nil {
			return err
		}
		for _, name := range []string{"hotspot3D", "nn"} {
			series[name].Write(os.Stdout)
			writeCSV("fig4_"+name+".tsv", series[name].String())
			fmt.Println()
		}
		return nil
	})
	run("robustness", func() error {
		rows, err := experiments.Robustness(cfg)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-24s avg |err| %.1f%% on KU060 (paper: HotSpot 9.7%%, pathfinder 13.6%%)\n",
				r.Kernel, r.AvgErr)
		}
		return nil
	})
	run("dsequality", func() error {
		r, err := experiments.DSEQuality(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Printf("kernels %d: model-selected design within %.1f%% of optimum (paper: 2.1%%)\n",
			r.Kernels, r.AvgGap)
		fmt.Printf("speedup of selected over unoptimized design: %.0fx (paper: 273x)\n", r.AvgSpeedup)
		fmt.Printf("model evaluation %.0fx faster than simulated system run "+
			"(paper: >10,000x vs real synthesis+P&R)\n", r.SpeedupRate)
		return nil
	})
	run("searchcmp", func() error {
		r, err := experiments.SearchComparison(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("PolyBench kernels %d: FlexCL exhaustive optimal %.0f%% (paper: 96%%), "+
			"heuristic [16] optimal %.0f%% (paper: 12%%)\n",
			r.Kernels, r.FlexCLOptimal*100, r.HeuristicOptimal*100)
		return nil
	})
	run("ablation", func() error {
		rows, err := experiments.AblationStudy(cfg, nil)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-28s avg |err| %6.1f%%\n", r.Name, r.AvgErr)
		}
		return nil
	})
}
