// Command flexcl-check audits the FlexCL reproduction for correctness
// drift: it runs the cross-layer check families of internal/check —
// model invariants over the benchmark corpus, differential checks
// against the cycle-level simulator, HTTP-service consistency, the
// guided-search equivalence proof (branch-and-bound vs exhaustive), and
// the static-profiler equivalence proof (static slice executor vs
// interpreter, bitwise) — and exits non-zero when any non-allowlisted
// finding survives.
//
// Usage:
//
//	flexcl-check                 # full corpus, all families
//	flexcl-check -smoke          # CI subset, time-boxed
//	flexcl-check -families invariant,differential
//	flexcl-check -families search
//	flexcl-check -families profile
//	flexcl-check -bench srad -kernel srad
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/check"
	"repro/internal/device"
	"repro/internal/dse"
)

func main() {
	var (
		platform  = flag.String("platform", "virtex7", "virtex7 or ku060")
		families  = flag.String("families", "", "comma-separated check families (invariant,differential,serve,search,profile); empty = all")
		benchName = flag.String("bench", "", "restrict to one benchmark (with -kernel)")
		kernel    = flag.String("kernel", "", "restrict to one kernel (with -bench)")
		smoke     = flag.Bool("smoke", false, "CI smoke mode: deterministic kernel subset, one WG size each")
		workers   = flag.Int("workers", 0, "kernel-level worker goroutines (0 = 4)")
		simGroups = flag.Int("sim-groups", 0, "work-groups simulated per differential point (0 = 4)")
		band      = flag.Float64("band", 0, "differential error band in percent (0 = default)")
		timeout     = flag.Duration("timeout", 30*time.Minute, "overall deadline")
		verbose     = flag.Bool("v", false, "per-kernel progress on stderr")
		artifactDir = flag.String("artifact-dir", "", "persist compile+analyze results to this directory and reuse them across audits (empty = memory only)")
	)
	flag.Parse()

	p, ok := device.Platforms()[*platform]
	if !ok {
		fmt.Fprintf(os.Stderr, "flexcl-check: unknown platform %q\n", *platform)
		os.Exit(1)
	}

	opts := check.Options{
		Platform:     p,
		Smoke:        *smoke,
		Workers:      *workers,
		SimMaxGroups: *simGroups,
		ErrorBandPct: *band,
	}
	if *artifactDir != "" {
		store, err := artifact.Open(*artifactDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flexcl-check: %v\n", err)
			os.Exit(1)
		}
		opts.Cache = dse.NewPrepCacheOpts(dse.PrepCacheOptions{Store: store})
	}
	if *families != "" {
		for _, f := range strings.Split(*families, ",") {
			if f = strings.TrimSpace(f); f != "" {
				opts.Families = append(opts.Families, f)
			}
		}
	}
	if *benchName != "" || *kernel != "" {
		k := bench.Find(*benchName, *kernel)
		if k == nil {
			fmt.Fprintf(os.Stderr, "flexcl-check: kernel %s/%s not found\n", *benchName, *kernel)
			os.Exit(1)
		}
		opts.Kernels = []*bench.Kernel{k}
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "flexcl-check: "+format+"\n", args...)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	rep, err := check.Run(ctx, opts)
	if opts.Cache != nil {
		// Artifact writes trail the fills; let them land so the next
		// audit against this directory starts warm.
		opts.Cache.Flush()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexcl-check: %v\n", err)
		os.Exit(1)
	}

	violations := rep.Violations()
	allowed := rep.Allowed()
	if len(rep.Findings) > 0 {
		rep.Table().Write(os.Stdout)
		fmt.Println()
	}
	fmt.Printf("flexcl-check: %d checks over %d kernels in %v — %d violations, %d allowed, %d attributed scaling pairs\n",
		rep.Checks, rep.Kernels, rep.Duration.Round(time.Millisecond),
		len(violations), len(allowed), rep.Attributed)
	if len(violations) > 0 {
		os.Exit(1)
	}
}
